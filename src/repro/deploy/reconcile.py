"""Reconfiguration as data: spec diff → ordered migration plan.

Changing a running federation used to be hand-sequenced method calls
(``join``/``retire``/``enable_replication`` in the right order, with the
operator responsible for not stranding a partition).  The reconciler
replaces that with one entry point::

    plan = apply(federation, target_spec)

``DeploymentDiff.between(current, target)`` compares two specs
*structurally* — topology, servant placement and classification,
replication, effective fault sites — and compiles the difference into a
:class:`MigrationPlan`: an ordered list of elastic actions executed
through the existing migration-gate machinery (frozen partitions,
quiesced in-flight envelopes, atomic epoch swaps), so applying a plan
under live traffic fails no in-flight calls.

Plan order is canonical and capacity-safe: **additions before
removals**.  Joins run first and retires run last, so a diff that both
adds and removes nodes never shrinks the federation below the capacity
the surviving partitions (and replica placement) need — the
"retire-before-join strands a partition" failure mode is impossible by
construction.  Replication changes run after joins (standbys are placed
on the final ring) and before retires (the retiree's partitions are
already covered elsewhere).

Not every difference is migratable: a changed application (different
PIM source or concern plan), changed node workers, or a servant whose
type changed under the same name require a redeploy — the diff refuses
them with :class:`~repro.errors.DeploymentError` instead of guessing.
Mutable servant *state* and the advisory partition owner hints are
ignored: they describe runtime history, not desired topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.deploy.compiler import DeploymentCompiler
from repro.deploy.spec import DeploymentSpec, ServantSpec
from repro.errors import DeploymentError


@dataclass
class MigrationAction:
    """One step of a migration plan (kind + payload)."""

    kind: str
    detail: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __str__(self):
        return f"{self.kind}: {self.detail}"


@dataclass
class MigrationPlan:
    """Ordered elastic actions lowering one spec diff onto a federation."""

    current_digest: str
    target_digest: str
    actions: List[MigrationAction] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.actions

    def add(self, kind: str, detail: str, **payload) -> None:
        self.actions.append(MigrationAction(kind, detail, payload))

    def describe(self) -> str:
        if self.empty:
            return "migration plan: specs converge; nothing to do"
        lines = [f"migration plan ({len(self.actions)} action(s)):"]
        lines.extend(
            f"  {i + 1:2d}. {action}" for i, action in enumerate(self.actions)
        )
        return "\n".join(lines)

    # -- execution ----------------------------------------------------------------

    def execute(self, federation) -> None:
        """Run every action against ``federation``, in plan order, via
        the elastic machinery (gated migrations, epoch swaps)."""
        for action in self.actions:
            self._execute_one(federation, action)

    @staticmethod
    def _execute_one(federation, action: MigrationAction) -> None:
        payload = action.payload
        if action.kind == "join":
            federation.join(
                payload["node"],
                workers=payload["workers"],
                seed=payload["seed"],
                deploy=lambda node: DeploymentCompiler.deploy_node(
                    federation, node
                ),
            )
        elif action.kind == "retire":
            federation.retire(payload["node"])
        elif action.kind == "bind_servants":
            # classification is NOT touched here: the plan's
            # mark_read_only actions (ordered before the binds) carry
            # the per-type sets, spec-wide — a single servant's view
            # must never replace its type's classification
            for entry in payload["servants"]:
                servant_spec = ServantSpec.from_dict(entry)
                owner = federation.node_for(
                    federation.naming.partition_key(servant_spec.name)
                )
                DeploymentCompiler._bind_servant(owner, servant_spec)
        elif action.kind == "unbind_servants":
            for name in payload["servants"]:
                node, ref = federation.resolve(name)
                node.services.naming.unbind(name)
                node.services.orb.unregister(
                    node.services.bus.servant(ref.object_id)
                )
        elif action.kind == "set_observability":
            from repro.deploy.spec import ObservabilitySpec

            federation.observability.configure(
                ObservabilitySpec.from_dict(payload["observability"])
            )
        elif action.kind == "set_replication":
            federation.set_replication(
                payload["count"],
                mode=payload.get("mode"),
                snapshot_every=payload.get("snapshot_every"),
            )
        elif action.kind == "set_binding_qos":
            from repro.deploy.spec import QoSProfile

            federation.replace_binding_qos(
                (pattern, QoSProfile.from_dict(profile).to_qos())
                for pattern, profile in payload["pairs"]
            )
        elif action.kind == "configure_fault":
            federation.configure_fault(
                payload["site"], payload["probability"]
            )
        elif action.kind == "mark_read_only":
            federation.mark_read_only(payload["type"], payload["ops"])
        elif action.kind == "add_user":
            federation.add_user(
                payload["name"], payload["password"], roles=payload["roles"]
            )
        else:  # pragma: no cover - plans are built by between()
            raise DeploymentError(f"unknown migration action {action.kind!r}")


class DeploymentDiff:
    """The structural difference between two deployment specs."""

    def __init__(self, current: DeploymentSpec, target: DeploymentSpec):
        self.current = current
        self.target = target
        self.added_nodes: List = []
        self.removed_nodes: List = []
        self.added_servants: List[ServantSpec] = []
        self.removed_servants: List[str] = []
        self.replication_change: Optional[Tuple[int, int]] = None
        #: the full target replication policy when anything about it
        #: changed (count raise or log snapshot-threshold retune)
        self.replication_target = None
        self.fault_changes: List[Tuple[str, float]] = []
        #: (type name, target read-only set) — one entry per type whose
        #: classification differs (replace semantics: an empty target
        #: set *clears* the type's classification)
        self.read_only_changes: List[Tuple[str, Tuple[str, ...]]] = []
        #: True when the resolved QoS declarations (per-binding defaults
        #: or the client profile) differ; the plan re-declares the table
        self.qos_changed = False
        #: users present only in the target (removals/changes are
        #: refused — credential revocation has no live migration path)
        self.added_users: List = []
        #: the target observability knobs when they differ (all four are
        #: live-tunable: sampling, slow-call threshold, ring capacities)
        self.observability_change = None

    # -- construction -------------------------------------------------------------

    @classmethod
    def between(
        cls, current: DeploymentSpec, target: DeploymentSpec
    ) -> "DeploymentDiff":
        """Compare ``current`` → ``target``; raises
        :class:`DeploymentError` for differences with no migration path."""
        target.validate()
        diff = cls(current, target)
        if current.application.to_dict() != target.application.to_dict():
            raise DeploymentError(
                "application changed between specs (PIM source or concern "
                "plan); reconfiguration cannot migrate code — redeploy"
            )
        current_nodes = {node.name: node for node in current.nodes}
        target_nodes = {node.name: node for node in target.nodes}
        for name in sorted(set(target_nodes) - set(current_nodes)):
            diff.added_nodes.append(target_nodes[name])
        for name in sorted(set(current_nodes) - set(target_nodes)):
            diff.removed_nodes.append(current_nodes[name])
        for name in sorted(set(current_nodes) & set(target_nodes)):
            if current_nodes[name].workers != target_nodes[name].workers:
                raise DeploymentError(
                    f"node {name!r} changed workers "
                    f"({current_nodes[name].workers} -> "
                    f"{target_nodes[name].workers}); dispatcher pools "
                    "cannot be resized live — retire and rejoin the node"
                )
        current_servants = {
            servant.name: servant for _p, servant in current.servants()
        }
        target_servants = {
            servant.name: servant for _p, servant in target.servants()
        }
        for name in sorted(set(target_servants) - set(current_servants)):
            diff.added_servants.append(target_servants[name])
        for name in sorted(set(current_servants) - set(target_servants)):
            diff.removed_servants.append(name)
        for name in sorted(set(current_servants) & set(target_servants)):
            before, after = current_servants[name], target_servants[name]
            if before.type_name != after.type_name:
                raise DeploymentError(
                    f"servant {name!r} changed type "
                    f"({before.type_name!r} -> {after.type_name!r}); "
                    "replace it (remove + add under a new name) instead"
                )
        # classification is per *type* (the bus granularity): one entry
        # per type whose union over the whole spec differs — including a
        # narrowed or cleared set, which must take effect on apply
        current_read_only = current.read_only_by_type()
        target_read_only = target.read_only_by_type()
        for type_name in sorted(set(current_read_only) | set(target_read_only)):
            if current_read_only.get(type_name, frozenset()) != (
                target_read_only.get(type_name, frozenset())
            ):
                diff.read_only_changes.append(
                    (
                        type_name,
                        tuple(sorted(target_read_only.get(type_name, ()))),
                    )
                )
        if cls._qos_table(current) != cls._qos_table(target):
            diff.qos_changed = True
        if (
            current.replication != target.replication
            and (current.replication.count or target.replication.count)
        ):
            if target.replication.count < current.replication.count:
                raise DeploymentError(
                    "replication count cannot be lowered live "
                    f"({current.replication.count} -> "
                    f"{target.replication.count}); standby state would be "
                    "dropped under traffic"
                )
            if (
                current.replication.count > 0
                and current.replication.mode != target.replication.mode
            ):
                raise DeploymentError(
                    "replication mode cannot be changed live "
                    f"({current.replication.mode!r} -> "
                    f"{target.replication.mode!r}); standby state would "
                    "have to be rebuilt under traffic — redeploy instead"
                )
            diff.replication_change = (
                current.replication.count,
                target.replication.count,
            )
            diff.replication_target = target.replication
        current_users = {user.name: user for user in current.users}
        target_users = {user.name: user for user in target.users}
        for name in sorted(set(target_users) - set(current_users)):
            diff.added_users.append(target_users[name])
        removed_users = sorted(set(current_users) - set(target_users))
        if removed_users:
            raise DeploymentError(
                f"user(s) {removed_users} removed between specs; credential "
                "revocation has no live migration path — redeploy"
            )
        for name in sorted(set(current_users) & set(target_users)):
            if current_users[name] != target_users[name]:
                raise DeploymentError(
                    f"user {name!r} changed password or roles between "
                    "specs; credential rotation has no live migration "
                    "path — redeploy"
                )
        for attr in ("sim_latency_ms", "real_latency_ms", "delivery_workers"):
            if getattr(current, attr) != getattr(target, attr):
                raise DeploymentError(
                    f"{attr} changed between specs "
                    f"({getattr(current, attr)} -> {getattr(target, attr)}); "
                    "transport parameters cannot be changed live — redeploy"
                )
        current_faults = {
            site.site: site.probability
            for site in current.faults.effective_sites()
        }
        target_faults = {
            site.site: site.probability
            for site in target.faults.effective_sites()
        }
        for site in sorted(set(target_faults) | set(current_faults)):
            before = current_faults.get(site, 0.0)
            after = target_faults.get(site, 0.0)
            if before != after:
                diff.fault_changes.append((site, after))
        if current.observability != target.observability:
            diff.observability_change = target.observability
        return diff

    @staticmethod
    def _qos_table(spec: DeploymentSpec):
        """The spec's resolved QoS declarations, comparable by value."""
        return {
            "bindings": {
                servant.name: spec.profile(servant.qos).to_dict()
                for _partition, servant in spec.servants()
                if servant.qos is not None
            },
            "client": (
                spec.profile(spec.client_qos).to_dict()
                if spec.client_qos is not None
                else None
            ),
        }

    @property
    def empty(self) -> bool:
        return not (
            self.added_nodes
            or self.removed_nodes
            or self.added_servants
            or self.removed_servants
            or self.replication_change
            or self.fault_changes
            or self.read_only_changes
            or self.qos_changed
            or self.added_users
            or self.observability_change
        )

    # -- lowering ----------------------------------------------------------------

    def plan(self) -> MigrationPlan:
        """Compile the diff into the canonically ordered migration plan:
        joins → servant/classification additions → replication → fault
        changes → servant removals → retires (additions strictly before
        removals, so capacity never shrinks before demand does)."""
        plan = MigrationPlan(
            current_digest=self.current.digest(),
            target_digest=self.target.digest(),
        )
        target_seed = self.target.seed
        for user in self.added_users:
            # ordered first: provisioning is remembered by the
            # federation, so nodes joined later in this same plan are
            # provisioned identically
            plan.add(
                "add_user",
                f"provision user {user.name!r} roles={list(user.roles)}",
                name=user.name,
                password=user.password,
                roles=list(user.roles),
            )
        for index, node in enumerate(self.added_nodes):
            plan.add(
                "join",
                f"join node {node.name!r} "
                f"({node.workers or 'serial'} workers)",
                node=node.name,
                workers=node.workers,
                seed=(
                    node.seed
                    if node.seed is not None
                    else target_seed * 31 + 97 + index
                ),
            )
        for type_name, ops in self.read_only_changes:
            plan.add(
                "mark_read_only",
                f"classify {type_name!r} read-only ops {sorted(ops)}",
                type=type_name,
                ops=list(ops),
            )
        if self.added_servants:
            plan.add(
                "bind_servants",
                f"bind {len(self.added_servants)} new servant(s): "
                + ", ".join(s.name for s in self.added_servants[:4])
                + ("..." if len(self.added_servants) > 4 else ""),
                servants=[s.to_dict() for s in self.added_servants],
            )
        if self.replication_change is not None:
            before, after = self.replication_change
            target = self.replication_target
            if after != before:
                detail = f"raise replication {before} -> {after} standby(s)"
            else:
                detail = (
                    "retune replication snapshot threshold -> "
                    f"{target.snapshot_every}"
                )
            plan.add(
                "set_replication",
                detail,
                count=after,
                mode=target.mode,
                snapshot_every=target.snapshot_every,
            )
        if self.qos_changed:
            from repro.deploy.compiler import DeploymentCompiler

            pairs = [
                [pattern, profile.to_dict()]
                for pattern, profile in DeploymentCompiler._binding_qos(
                    self.target
                )
            ]
            plan.add(
                "set_binding_qos",
                f"re-declare per-binding QoS defaults ({len(pairs)} binding(s))",
                pairs=pairs,
            )
        for site, probability in self.fault_changes:
            plan.add(
                "configure_fault",
                f"set fault site {site!r} p={probability}",
                site=site,
                probability=probability,
            )
        if self.observability_change is not None:
            obs = self.observability_change
            plan.add(
                "set_observability",
                f"retune observability (sample {obs.sample_rate:.0%}, "
                f"slow >= {obs.slow_call_ms:g} ms, events <= "
                f"{obs.event_log_capacity}, spans <= {obs.span_capacity})",
                observability=obs.to_dict(),
            )
        if self.removed_servants:
            plan.add(
                "unbind_servants",
                f"unbind {len(self.removed_servants)} servant(s)",
                servants=list(self.removed_servants),
            )
        for node in self.removed_nodes:
            plan.add("retire", f"retire node {node.name!r}", node=node.name)
        return plan

    def describe(self) -> str:
        if self.empty:
            return "specs converge: no structural difference"
        lines = ["spec diff:"]
        for node in self.added_nodes:
            lines.append(f"  + node {node.name}")
        for node in self.removed_nodes:
            lines.append(f"  - node {node.name}")
        for servant in self.added_servants:
            lines.append(f"  + servant {servant.name} ({servant.type_name})")
        for name in self.removed_servants:
            lines.append(f"  - servant {name}")
        if self.replication_change:
            before, after = self.replication_change
            lines.append(f"  ~ replication {before} -> {after}")
        for site, probability in self.fault_changes:
            lines.append(f"  ~ fault {site} -> p={probability}")
        for type_name, ops in self.read_only_changes:
            lines.append(f"  ~ read-only {type_name} -> {sorted(ops)}")
        if self.qos_changed:
            lines.append("  ~ QoS declarations changed")
        for user in self.added_users:
            lines.append(f"  + user {user.name}")
        if self.observability_change is not None:
            obs = self.observability_change
            lines.append(
                f"  ~ observability -> sample {obs.sample_rate:.0%}, "
                f"slow >= {obs.slow_call_ms:g} ms"
            )
        return "\n".join(lines)


def apply(federation, target: DeploymentSpec) -> MigrationPlan:
    """Reconcile a live federation onto ``target``: extract the current
    spec, diff, execute the migration plan, and adopt the target as the
    federation's declared spec.  Returns the executed plan (possibly
    empty — applying a converged spec is a no-op)."""
    current = federation.current_spec()
    diff = DeploymentDiff.between(current, target)
    plan = diff.plan()
    plan.execute(federation)
    federation.spec = target
    return plan
