"""Code generator for the pure functional model.

Emits one Python module per UML model: enumerations, classes with
inheritance, attributes initialized from type-derived defaults, and
operations whose bodies come from the ``<<PythonBody>>`` stereotype
(``body`` tagged value).  Operations without a body raise
``NotImplementedError`` — the generator never invents behaviour.

The output contains **no concern logic whatsoever**: distribution,
transactions and security arrive later, as generated aspects woven over
these classes (the paper's split between the functional code generator and
the aspect generators).
"""

from __future__ import annotations

import keyword
import types as _types
from typing import List

from repro.errors import CodegenError
from repro.metamodel.instances import MObject
from repro.uml.metamodel import UML
from repro.uml.model import classes_of, owned_elements
from repro.uml.profiles import get_tag, has_stereotype
from repro.codegen.emitter import CodeWriter

#: UML primitive name → Python default-value literal
_DEFAULTS = {
    "String": '""',
    "Integer": "0",
    "Real": "0.0",
    "Boolean": "False",
}


def _check_identifier(name: str, what: str) -> str:
    if not name.isidentifier() or keyword.iskeyword(name):
        raise CodegenError(f"{what} {name!r} is not a valid Python identifier")
    return name


def _attribute_default(attribute: MObject) -> str:
    if attribute.upper != 1:
        return "[]"
    default = attribute.defaultValue
    if default:
        return default
    type_el = attribute.type
    if type_el is None:
        return "None"
    if type_el.isinstance_of(UML.Enumeration):
        literals = list(type_el.literals)
        return f"{type_el.name}.{literals[0].name}" if literals else "None"
    return _DEFAULTS.get(type_el.name, "None")


def _topo_classes(model: MObject) -> List[MObject]:
    """Classes sorted so every superclass precedes its subclasses."""
    classes = list(classes_of(model))
    placed: List[MObject] = []
    placed_ids = set()
    remaining = list(classes)
    while remaining:
        progressed = False
        for cls in list(remaining):
            local_supers = [s for s in cls.superclasses if any(s is c for c in classes)]
            if all(id(s) in placed_ids for s in local_supers):
                placed.append(cls)
                placed_ids.add(id(cls))
                remaining.remove(cls)
                progressed = True
        if not progressed:
            names = [c.name for c in remaining]
            raise CodegenError(f"inheritance cycle among classes {names}")
    return placed


def _emit_enumeration(writer: CodeWriter, enum_el: MObject) -> None:
    with writer.block(f"class {_check_identifier(enum_el.name, 'enumeration')}(enum.Enum):"):
        doc = enum_el.documentation
        if doc:
            writer.line(f'"""{doc}"""')
        literals = list(enum_el.literals)
        if not literals:
            writer.line("pass")
        for literal in literals:
            lit = _check_identifier(literal.name, "enum literal")
            writer.line(f'{lit} = "{lit}"')
    writer.line()
    writer.line()


def _operation_signature(operation: MObject) -> str:
    names = ["self"]
    for parameter in operation.parameters:
        if parameter.direction == "return":
            continue
        pname = _check_identifier(parameter.name, "parameter")
        default = parameter.defaultValue
        names.append(f"{pname}={default}" if default else pname)
    return ", ".join(names)


def _emit_operation(writer: CodeWriter, cls: MObject, operation: MObject) -> None:
    op_name = _check_identifier(operation.name, "operation")
    with writer.block(f"def {op_name}({_operation_signature(operation)}):"):
        doc = operation.documentation
        if doc:
            writer.line(f'"""{doc}"""')
        body = get_tag(operation, "PythonBody", "body")
        if operation.isAbstract:
            writer.line(
                f'raise NotImplementedError("{cls.name}.{op_name} is abstract")'
            )
        elif body:
            writer.lines(str(body))
        else:
            writer.line(
                f'raise NotImplementedError("no <<PythonBody>> for {cls.name}.{op_name}")'
            )
    writer.line()


def _emit_class(writer: CodeWriter, cls: MObject) -> None:
    name = _check_identifier(cls.name, "class")
    bases = ", ".join(_check_identifier(s.name, "superclass") for s in cls.superclasses)
    header = f"class {name}({bases}):" if bases else f"class {name}:"
    with writer.block(header):
        doc = cls.documentation or f"Generated from UML class {cls.name}."
        writer.line(f'"""{doc}"""')
        writer.line()
        attributes = list(cls.attributes)
        with writer.block("def __init__(self, **kwargs):"):
            if cls.superclasses:
                writer.line("super().__init__(**kwargs)")
            for attribute in attributes:
                aname = _check_identifier(attribute.name, "attribute")
                writer.line(
                    f'self.{aname} = kwargs.get("{aname}", {_attribute_default(attribute)})'
                )
            if not attributes and not cls.superclasses:
                writer.line("del kwargs  # no attributes declared")
        writer.line()
        for operation in cls.operations:
            _emit_operation(writer, cls, operation)
    writer.line()


def generate_module(model: MObject) -> str:
    """Generate the functional module's source for a UML ``Model``."""
    if not model.isinstance_of(UML.Package):
        raise CodegenError("code generation needs a UML Model/Package root")
    writer = CodeWriter()
    writer.line('"""Functional code generated from UML model '
                f"{model.name!r} by repro.codegen (S9)." + '"""')
    writer.line()
    writer.line("import enum")
    writer.line()
    writer.line()
    enums = [
        el for el in owned_elements(model) if el.isinstance_of(UML.Enumeration)
    ]
    for enum_el in enums:
        _emit_enumeration(writer, enum_el)
    for cls in _topo_classes(model):
        if has_stereotype(cls, "Generated"):
            # infrastructure classes added by transformations are realized by
            # the middleware substrate, not by the functional generator
            continue
        _emit_class(writer, cls)
    return writer.render()


def compile_model(model: MObject, module_name: str = "generated_app"):
    """Generate and execute the functional module; returns the module object."""
    source = generate_module(model)
    module = _types.ModuleType(module_name)
    module.__dict__["__source__"] = source
    try:
        exec(compile(source, f"<generated {module_name}>", "exec"), module.__dict__)
    except SyntaxError as exc:
        raise CodegenError(f"generated module does not compile: {exc}") from exc
    return module
