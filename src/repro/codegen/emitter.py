"""Indentation-aware source writer used by both generator backends."""

from __future__ import annotations

import contextlib
from typing import List


class CodeWriter:
    """Accumulates source lines with managed indentation."""

    def __init__(self, indent_unit: str = "    "):
        self._lines: List[str] = []
        self._indent_unit = indent_unit
        self._level = 0

    def line(self, text: str = "") -> "CodeWriter":
        """Emit one line at the current indentation (blank stays blank)."""
        if text:
            self._lines.append(self._indent_unit * self._level + text)
        else:
            self._lines.append("")
        return self

    def lines(self, text: str) -> "CodeWriter":
        """Emit a multi-line block, re-indenting each line."""
        for raw in text.splitlines():
            self.line(raw.rstrip())
        return self

    @contextlib.contextmanager
    def indent(self):
        self._level += 1
        try:
            yield self
        finally:
            self._level -= 1

    @contextlib.contextmanager
    def block(self, header: str):
        """``with w.block("class Foo:"):`` — header line plus one indent level."""
        self.line(header)
        with self.indent():
            yield self

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"

    def __len__(self):
        return len(self._lines)
