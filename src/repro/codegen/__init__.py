"""S9 — Code and aspect generators.

The paper replaces the single monolithic PSM-to-code generator with

* one code generator for the **pure functional model** —
  :mod:`repro.codegen.python_backend` emits a plain Python module from the
  UML model, free of any concern logic; and
* per-concern **aspect generators** —
  :mod:`repro.codegen.aspect_backend` emits each concrete aspect as a
  standalone, importable source artifact with the parameter set ``Si``
  baked in as a literal.

Operation bodies come from the ``<<PythonBody>>`` stereotype's ``body``
tagged value — the action-language substitution for Executable UML
(documented in DESIGN.md).
"""

from repro.codegen.emitter import CodeWriter
from repro.codegen.python_backend import compile_model, generate_module
from repro.codegen.aspect_backend import compile_aspect, generate_aspect_module

__all__ = [
    "CodeWriter",
    "generate_module",
    "compile_model",
    "generate_aspect_module",
    "compile_aspect",
]
