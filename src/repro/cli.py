"""Command-line front end: inspect, validate, refine, and generate.

The §3 tool infrastructure, driveable from a shell::

    python -m repro.cli concerns
    python -m repro.cli info model.xmi
    python -m repro.cli validate model.xmi
    python -m repro.cli apply model.xmi --concern transactions \
        --params '{"transactional_ops": ["Account.withdraw"], "state_classes": ["Account"]}' \
        --out refined.xmi
    python -m repro.cli pipeline model.xmi --plan plan.json --out refined.xmi
    python -m repro.cli generate refined.xmi --out generated_app.py
    python -m repro.cli fingerprint refined.xmi
    python -m repro.cli simulate --scenario banking --clients 8 --seed 1
    python -m repro.cli simulate --scenario banking_elastic --serial --churn
    python -m repro.cli deploy --spec examples/deployment_spec.json --check
    python -m repro.cli deploy --spec base.json --diff target.json
    python -m repro.cli deploy --spec base.json --apply target.json

``apply`` runs the full engine path (OCL preconditions → rules →
postconditions) and reports the demarcation summary; ``pipeline`` runs a
multi-concern configuration plan through the plan → schedule → execute
pass-manager (batched, one savepoint per batch, cache stats reported);
``generate`` emits the functional module source.

A plan file is a JSON list of selections::

    [
      {"concern": "distribution",
       "params": {"server_classes": ["Account"], "registry_prefix": "bank"}},
      {"concern": "security",
       "params": {...},
       "after": ["distribution"]}
    ]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.codegen import generate_module
from repro.core.registry import default_registry
from repro.core.shipping import model_fingerprint
from repro.errors import ReproError
from repro.metamodel import validate as validate_model
from repro.repository import ModelRepository
from repro.transform import TransformationEngine
from repro.uml import UML, classes_of, owned_elements
from repro.workflow import ConcernWizard
from repro.xmi import read_xmi, write_xmi


def _load(path: str):
    return read_xmi(path, UML.package)


def _cmd_concerns(args) -> int:
    registry = default_registry()
    for concern_name in registry.concerns():
        wizard = ConcernWizard(registry.get(concern_name))
        print(wizard.transcript())
        print()
    return 0


def _cmd_info(args) -> int:
    resource = _load(args.model)
    model = resource.roots[0]
    classes = list(classes_of(model))
    packages = [
        e for e in owned_elements(model) if e.isinstance_of(UML.Package)
    ]
    operations = sum(len(list(c.operations)) for c in classes)
    attributes = sum(len(list(c.attributes)) for c in classes)
    total = sum(1 for _ in resource.all_contents())
    print(f"model {model.name!r}: {total} elements")
    print(f"  packages:   {len(packages)}")
    print(f"  classes:    {len(classes)}")
    print(f"  operations: {operations}")
    print(f"  attributes: {attributes}")
    for cls in classes:
        marks = ", ".join(s.name for s in cls.stereotypes)
        suffix = f"  <<{marks}>>" if marks else ""
        print(f"    class {cls.name}{suffix}")
    return 0


def _cmd_validate(args) -> int:
    resource = _load(args.model)
    diagnostics = validate_model(resource, raise_on_error=False)
    if not diagnostics:
        print("model is well-formed")
        return 0
    for diagnostic in diagnostics:
        print(f"violation: {diagnostic}")
    return 1


def _cmd_apply(args) -> int:
    resource = _load(args.model)
    try:
        parameters = json.loads(args.params) if args.params else {}
    except json.JSONDecodeError as exc:
        print(f"error: --params is not valid JSON: {exc}", file=sys.stderr)
        return 2
    registry = default_registry()
    engine = TransformationEngine(ModelRepository(resource))
    gmt = registry.get(args.concern)
    cmt = gmt.specialize(**parameters)
    result = engine.apply(cmt)
    print(f"applied {result.transformation}")
    print(f"  concern:          {result.concern}")
    print(f"  elements created: {result.created_elements}")
    print(f"  trace links:      {result.trace_links}")
    print(engine.repository.demarcation.report())
    if args.out:
        write_xmi(resource, args.out)
        print(f"refined model written to {args.out}")
    return 0


def _cmd_pipeline(args) -> int:
    from repro.pipeline import ConfigurationPlan, PipelineExecutor, Scheduler

    resource = _load(args.model)
    try:
        with open(args.plan, "r", encoding="utf-8") as handle:
            config = json.load(handle)
    except json.JSONDecodeError as exc:
        print(f"error: plan file is not valid JSON: {exc}", file=sys.stderr)
        return 2
    plan = ConfigurationPlan.from_config(config)
    steps = plan.bind(default_registry())
    schedule = Scheduler().schedule(steps)
    print(schedule.describe())
    repository = ModelRepository(resource)
    repository.commit("initial PIM")
    executor = PipelineExecutor(repository)
    result = executor.run(schedule)
    print(result.report())
    print(repository.demarcation.report())
    if args.out:
        write_xmi(resource, args.out)
        print(f"refined model written to {args.out}")
    return 0


def _cmd_generate(args) -> int:
    resource = _load(args.model)
    source = generate_module(resource.roots[0])
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"functional module written to {args.out}")
    else:
        print(source)
    return 0


def _cmd_fingerprint(args) -> int:
    resource = _load(args.model)
    for line in model_fingerprint(resource):
        print(line)
    return 0


def _load_spec(path: str):
    from repro.deploy import DeploymentSpec

    with open(path, "r", encoding="utf-8") as handle:
        return DeploymentSpec.from_json(handle.read())


def _cmd_deploy(args) -> int:
    from repro.deploy import DeploymentCompiler, DeploymentDiff
    from repro.deploy import apply as apply_spec

    spec = _load_spec(args.spec)
    spec.validate()
    print(spec.describe())
    if args.check:
        print("spec is valid")
        return 0
    if args.diff:
        target = _load_spec(args.diff)
        diff = DeploymentDiff.between(spec, target)
        print(diff.describe())
        print(diff.plan().describe())
        return 0
    compiler = DeploymentCompiler()
    if args.apply:
        target = _load_spec(args.apply)
        federation = compiler.deploy(spec)
        try:
            plan = apply_spec(federation, target)
            print(plan.describe())
            drift = DeploymentDiff.between(
                federation.current_spec(), target
            )
            if not drift.empty:
                print("reconciliation did NOT converge:")
                print(drift.describe())
                return 1
            print(
                f"reconciled onto {target.name!r}: "
                f"{len(federation.nodes)} node(s), "
                f"epoch {federation.naming.epoch}, converged"
            )
        finally:
            federation.shutdown()
        return 0
    # default: dry-run compile — print the ordered bootstrap plan
    print(compiler.compile(spec).describe())
    return 0


def _cmd_simulate(args) -> int:
    from repro.runtime import RunConfig, ScenarioRunner

    open_loop = None
    overrides = {
        "users": args.users,
        "arrival": args.arrival,
        "zipf_s": args.zipf_s,
        "max_lateness_ms": args.max_lateness_ms,
        "service_time_ms": args.service_time_ms,
    }
    given = {key: value for key, value in overrides.items() if value is not None}
    if args.open_loop:
        open_loop = given
    elif given:
        flags = ", ".join(f"--{key.replace('_', '-')}" for key in sorted(given))
        print(f"error: {flags} only make sense with --open-loop", file=sys.stderr)
        return 2
    config = RunConfig(
        scenario=args.scenario,
        nodes=args.nodes,
        clients=args.clients,
        ops=args.ops,
        seed=args.seed,
        workers=args.workers,
        concurrent=not args.serial,
        sim_latency_ms=args.sim_latency_ms,
        real_latency_ms=args.latency_ms,
        faults=args.faults,
        entities_per_node=args.entities_per_node,
        window=args.window,
        delivery_workers=args.delivery_workers,
        transport=args.transport,
        churn=args.churn,
        replication_mode=args.replication_mode,
        trace=args.trace or bool(args.trace_out),
        open_loop=open_loop,
    )
    runner = ScenarioRunner(args.scenario, config)
    if args.describe:
        # validate + describe only: the full run configuration including
        # the deployment spec digest, without building or running
        print(json.dumps(config.describe(), indent=2))
        return 0
    result = runner.run()
    print(result.report())
    print(f"  digest:     {result.digest()}")
    if result.trace is not None:
        tracer = result.trace["tracer"]
        print(
            f"  trace:      {tracer['span_count']} span(s), "
            f"{tracer['slow_spans']} slow, {tracer['dropped']} dropped, "
            f"{len(result.trace['events'])} event(s)"
        )
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(result.trace, handle, indent=2)
        print(f"trace written to {args.trace_out}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"results written to {args.json}")
    return 0 if result.passed else 1


def _render_span(span, depth: int) -> str:
    indent = "  " + "  " * depth
    where = f" @{span['target']}" if span.get("target") else ""
    attempt = f" attempt={span['attempt']}" if span.get("attempt") else ""
    status = span.get("status", "?")
    error = f" error={span['error']}" if span.get("error") else ""
    slow = " SLOW" if span.get("slow") else ""
    events = ""
    if span.get("events"):
        events = " [" + ", ".join(e.get("event", "?") for e in span["events"]) + "]"
    return (
        f"{indent}{span['name']} ({span['kind']}{where}){attempt} "
        f"{span['duration_ms']:.3f} ms {status}{error}{slow}{events}"
    )


def _render_trace(spans, trace_id: str) -> List[str]:
    """One trace's spans as an indented tree (orphans become roots)."""
    mine = [s for s in spans if s["trace_id"] == trace_id]
    by_id = {s["span_id"]: s for s in mine}
    children = {}
    roots = []
    for span in mine:
        parent = span.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    lines = [f"trace {trace_id}:"]

    def walk(span, depth):
        lines.append(_render_span(span, depth))
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    # client roots finish last but should print first: sort roots so the
    # span that *started* the trace (client kind, then hops) leads
    order = {"client": 0, "hop": 1, "bus": 2}
    for root in sorted(roots, key=lambda s: order.get(s["kind"], 3)):
        walk(root, 0)
    return lines


def _cmd_node(args) -> int:
    if args.node_command == "serve":
        from repro.runtime.procfed import serve_node

        return serve_node(
            args.name,
            endpoint=args.endpoint,
            workers=args.workers,
            seed=args.seed,
        )
    raise ReproError(f"unknown node command {args.node_command!r}")


def _cmd_trace(args) -> int:
    with open(args.results, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    # accept either a full simulate --json results file or a bare
    # --trace-out export; both carry the same observability payload
    payload = data.get("trace", data) if isinstance(data, dict) else None
    tracer = payload.get("tracer") if isinstance(payload, dict) else None
    if not tracer:
        print(
            "error: no trace data in file (run simulate with --trace)",
            file=sys.stderr,
        )
        return 2
    spans = tracer.get("spans", [])
    print(
        f"{tracer.get('span_count', len(spans))} span(s), "
        f"{tracer.get('slow_spans', 0)} slow, "
        f"{tracer.get('dropped', 0)} dropped, "
        f"{len(payload.get('events', []))} event(s)"
    )
    if args.trace_id:
        ids = [args.trace_id]
    elif args.errors:
        seen = {}
        for span in spans:
            if span.get("status") == "error":
                seen.setdefault(span["trace_id"], None)
        ids = list(seen)[-args.slowest:]
        if not ids:
            print("no erroring traces")
            return 0
    else:
        worst = {}
        for span in spans:
            if span["duration_ms"] > worst.get(span["trace_id"], -1.0):
                worst[span["trace_id"]] = span["duration_ms"]
        ids = sorted(worst, key=lambda t: worst[t], reverse=True)[:args.slowest]
    shown = 0
    for trace_id in ids:
        lines = _render_trace(spans, trace_id)
        if len(lines) == 1:
            print(f"trace {trace_id}: no spans in buffer")
            continue
        print("\n".join(lines))
        shown += 1
    return 0 if shown or not ids else 1


def _cmd_analyze(args) -> int:
    from repro.analysis.check import run_check

    paths = list(args.paths)
    if not paths:
        paths = [str(Path(__file__).resolve().parent)]
    baseline = args.baseline
    if baseline is None and not args.no_baseline:
        for candidate in (
            Path("tools/concurrency_baseline.json"),
            Path(__file__).resolve().parents[2] / "tools" / "concurrency_baseline.json",
        ):
            if candidate.exists():
                baseline = str(candidate)
                break
    return run_check(
        paths,
        baseline_path=None if args.no_baseline else baseline,
        update_baseline=args.update_baseline,
        show_graph=args.graph,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Concern-oriented MDA tooling (MIDDLEWARE'03 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "concerns",
        help="list registered concerns and their configuration wizards",
        description="Print every registered concern with its wizard "
        "transcript: the ordered questions whose answers form the "
        "parameter set Si of the concern's generic transformation.",
    )

    info = sub.add_parser(
        "info",
        help="summarize an XMI model",
        description="Load an XMI model and print its element counts "
        "(packages, classes, operations, attributes) plus the applied "
        "stereotypes per class.",
    )
    info.add_argument("model", help="path to the XMI model file")

    check = sub.add_parser(
        "validate",
        help="well-formedness check an XMI model",
        description="Run the metamodel validator; prints each violation "
        "and exits 1 if the model is not well-formed.",
    )
    check.add_argument("model", help="path to the XMI model file")

    apply_cmd = sub.add_parser(
        "apply",
        help="apply one concern's transformation to a model",
        description="Specialize the named concern's generic "
        "transformation with --params (the parameter set Si) and apply "
        "it through the full engine path: OCL preconditions, rules, "
        "postconditions, demarcation report.",
    )
    apply_cmd.add_argument("model", help="path to the XMI model file")
    apply_cmd.add_argument(
        "--concern",
        required=True,
        help="registered concern to apply (see the 'concerns' subcommand)",
    )
    apply_cmd.add_argument(
        "--params", default="", help="JSON object with the parameter set Si"
    )
    apply_cmd.add_argument(
        "--out", default="", help="write the refined model to this XMI file"
    )

    pipeline = sub.add_parser(
        "pipeline",
        help="apply a multi-concern plan through the batched pipeline",
        description="Run a JSON configuration plan through the "
        "plan/schedule/execute pass-manager: independent concerns are "
        "batched, each batch gets one demarcated savepoint, and cache "
        "statistics are reported.",
    )
    pipeline.add_argument("model", help="path to the XMI model file")
    pipeline.add_argument(
        "--plan",
        required=True,
        help="JSON file with the concern selections (list of "
        '{"concern", "params", "after"} objects)',
    )
    pipeline.add_argument(
        "--out", default="", help="write the refined model to this XMI file"
    )

    generate = sub.add_parser(
        "generate",
        help="emit the functional Python module for a model",
        description="Generate the concern-free functional Python module "
        "(classes, attributes, PythonBody operations) for the model.",
    )
    generate.add_argument("model", help="path to the XMI model file")
    generate.add_argument(
        "--out", default="", help="write the generated source here (default: stdout)"
    )

    fingerprint = sub.add_parser(
        "fingerprint",
        help="print the uuid-free structural fingerprint of a model",
        description="Print the sorted structural fingerprint used to "
        "verify that a replayed component package matches the shipped "
        "final model (stable across XMI re-exports).",
    )
    fingerprint.add_argument("model", help="path to the XMI model file")

    deploy = sub.add_parser(
        "deploy",
        help="validate, compile, diff, or apply a declarative deployment spec",
        description="Drive the declarative deployment API: load a "
        "DeploymentSpec JSON file and either validate it (--check), "
        "print the ordered bootstrap plan a deployment would execute "
        "(default dry-run), print the spec diff and migration plan "
        "against a second spec (--diff), or materialize the spec as a "
        "live simulated federation and reconcile it onto a target spec "
        "(--apply), verifying that the topology converged.",
    )
    deploy.add_argument("--spec", required=True, help="deployment spec JSON file")
    deploy_mode = deploy.add_mutually_exclusive_group()
    deploy_mode.add_argument(
        "--check",
        action="store_true",
        help="validate the spec and print its summary/digest, then exit",
    )
    deploy_mode.add_argument(
        "--diff",
        default="",
        metavar="TARGET_SPEC",
        help="print the structural diff and ordered migration plan from "
        "--spec to this target spec (no federation is built)",
    )
    deploy_mode.add_argument(
        "--apply",
        default="",
        metavar="TARGET_SPEC",
        help="deploy --spec as a live simulated federation, reconcile it "
        "onto this target spec (diff -> migration plan -> elastic "
        "actions), and verify the live topology converged",
    )

    simulate = sub.add_parser(
        "simulate",
        help="run a built-in scenario on a multi-node federation under load",
        description="Build an N-node ORB federation, deploy the "
        "scenario's configured application on every node, drive seeded "
        "concurrent clients against it (optionally with fault injection "
        "and membership churn), then check the scenario's invariants "
        "against the servants' actual state.  Exits 1 on any invariant "
        "violation.",
    )
    simulate.add_argument(
        "--scenario",
        required=True,
        help="scenario name: banking, banking_openloop, banking_async, "
        "banking_elastic, auction, medical_records, component_shipping",
    )
    simulate.add_argument(
        "--nodes", type=int, default=3, help="federation size (ORB nodes)"
    )
    simulate.add_argument(
        "--clients", type=int, default=8, help="closed-loop client count"
    )
    simulate.add_argument(
        "--ops",
        type=int,
        default=400,
        help="total operations, split evenly across clients",
    )
    simulate.add_argument(
        "--seed",
        type=int,
        default=1,
        help="RNG seed for client mixes and fault injection (sequential "
        "runs are digest-deterministic per seed)",
    )
    simulate.add_argument(
        "--workers", type=int, default=4, help="dispatcher worker threads per node"
    )
    simulate.add_argument(
        "--serial",
        action="store_true",
        help="sequential dispatch (deterministic baseline; one client "
        "thread, serial dispatchers)",
    )
    simulate.add_argument(
        "--faults",
        action="store_true",
        help="arm the scenario's fault campaign (wildcard sites such as "
        "bus.* at the scenario's probabilities)",
    )
    simulate.add_argument(
        "--churn",
        action="store_true",
        help="arm the scenario's churn plan: membership events (node "
        "kill with replicated failover, live join with shard migration, "
        "graceful retire) fired at fixed points in the op stream — "
        "scenarios without a churn plan reject this flag",
    )
    simulate.add_argument(
        "--latency-ms",
        type=float,
        default=0.3,
        dest="latency_ms",
        help="real (slept) transport latency per federation hop, in ms",
    )
    simulate.add_argument(
        "--sim-latency-ms",
        type=float,
        default=0.5,
        dest="sim_latency_ms",
        help="simulated-clock transport latency per federation hop, in ms",
    )
    simulate.add_argument(
        "--entities-per-node",
        type=int,
        default=2,
        dest="entities_per_node",
        help="scenario entities (branches, auctions, ...) created per node",
    )
    simulate.add_argument(
        "--window",
        type=int,
        default=4,
        help="max in-flight async replies per client before the oldest "
        "is resolved (async scenarios)",
    )
    simulate.add_argument(
        "--delivery-workers",
        type=int,
        default=2,
        dest="delivery_workers",
        help="delivery threads of the federation's queued (async) transport",
    )
    simulate.add_argument(
        "--transport",
        choices=("inproc", "queued", "socket"),
        default="inproc",
        help="how routed federation hops travel: 'inproc' runs the hop "
        "on the caller's thread (default), 'queued' forces delivery "
        "threads, 'socket' sends every hop through a real wire "
        "connection to the owner node's listener (full marshalling, "
        "framing, and fault conversion — the same interceptor chain "
        "runs unmodified)",
    )
    simulate.add_argument(
        "--replication-mode",
        choices=("full", "log"),
        default=None,
        dest="replication_mode",
        help="override the scenario's replication machinery: 'full' "
        "write-through standby copies or 'log' append-only op-log "
        "shipping with snapshot/truncate (replicated scenarios only)",
    )
    simulate.add_argument(
        "--trace",
        action="store_true",
        help="enable distributed tracing: every logical client call gets "
        "a deterministic trace id and a span per federation hop, retry, "
        "and servant dispatch (run-level toggle — digests are unchanged)",
    )
    simulate.add_argument(
        "--trace-out",
        default="",
        dest="trace_out",
        metavar="PATH",
        help="write the observability export (spans, events, gauges) as "
        "JSON here; implies --trace (render it with the 'trace' command)",
    )
    simulate.add_argument(
        "--open-loop",
        action="store_true",
        dest="open_loop",
        help="drive the scenario open-loop on virtual time: an arrival "
        "schedule offers operations regardless of completions (simulated "
        "users, Zipf-hot shards, bounded-lateness admission — overload "
        "sheds instead of collapsing); --ops is the total offered "
        "arrivals and think time is rejected",
    )
    simulate.add_argument(
        "--users",
        type=int,
        default=None,
        help="simulated-user population for --open-loop (state machines, "
        "not threads — millions are fine)",
    )
    simulate.add_argument(
        "--arrival",
        default=None,
        help="offered-load shape for --open-loop: constant:RATE, "
        "poisson:RATE, bursty:BASE:BURST:PERIOD_MS[:DUTY], or "
        "diurnal:MEAN:AMPLITUDE:PERIOD_MS (rates in ops/s, periods in "
        "virtual ms)",
    )
    simulate.add_argument(
        "--zipf-s",
        type=float,
        default=None,
        dest="zipf_s",
        help="Zipf popularity exponent over the scenario's partitions "
        "for --open-loop (0 = uniform; larger = hotter hot shard)",
    )
    simulate.add_argument(
        "--max-lateness-ms",
        type=float,
        default=None,
        dest="max_lateness_ms",
        help="bounded-lateness admission for --open-loop: an arrival "
        "predicted to wait longer than this is shed, not queued",
    )
    simulate.add_argument(
        "--service-time-ms",
        type=float,
        default=None,
        dest="service_time_ms",
        help="modeled virtual service time per operation and dispatcher "
        "channel for --open-loop",
    )
    simulate.add_argument(
        "--json", default="", help="write the full machine-readable results here"
    )
    simulate.add_argument(
        "--describe",
        action="store_true",
        help="print the run configuration (including the deployment spec "
        "digest for spec-declared scenarios) as JSON and exit without "
        "running",
    )

    node_cmd = sub.add_parser(
        "node",
        help="worker node process management (multi-process federations)",
        description="Host one federation worker in this process: bind a "
        "wire listener, announce the endpoint on stdout as "
        "'REPRO-NODE <name> <endpoint>', and serve requests until a "
        "control 'stop' arrives.  The application arrives over the "
        "wire as a shipped component package — spawned and driven by "
        "ProcessFederation, or by hand for debugging.",
    )
    node_sub = node_cmd.add_subparsers(
        dest="node_command",
        required=True,
        metavar="ACTION",
        help="node action: 'serve' hosts one worker in this process",
    )
    node_serve = node_sub.add_parser(
        "serve",
        help="serve one worker node until stopped over the wire",
    )
    node_serve.add_argument(
        "--name", required=True, help="federation node name"
    )
    node_serve.add_argument(
        "--endpoint",
        default="tcp://127.0.0.1:0",
        help="listen endpoint: tcp://host:port (port 0 = OS-assigned) "
        "or unix:///path/to.sock (default tcp://127.0.0.1:0)",
    )
    node_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="dispatcher worker threads (0 = serial dispatch)",
    )
    node_serve.add_argument(
        "--seed", type=int, default=0, help="node middleware services seed"
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="render span trees from a traced simulate run",
        description="Read the results of a traced run (simulate --trace "
        "--json FILE, or the bare export from --trace-out) and render "
        "the span trees of the slowest calls — or of erroring calls "
        "with --errors, or of one specific call with --trace-id.  Each "
        "line shows the span's name, kind, serving node, attempt "
        "number, duration, status, and recorded events (retries, "
        "failover promotions, migration-gate waits, batch membership).",
    )
    trace_cmd.add_argument(
        "results",
        help="JSON file from 'simulate --trace --json FILE' or '--trace-out PATH'",
    )
    trace_cmd.add_argument(
        "--slowest",
        type=int,
        default=3,
        help="how many traces to render, ranked by slowest span (default 3)",
    )
    trace_cmd.add_argument(
        "--errors",
        action="store_true",
        help="render traces containing at least one error span instead "
        "of the slowest ones",
    )
    trace_cmd.add_argument(
        "--trace-id",
        default="",
        dest="trace_id",
        help="render exactly this trace id",
    )

    analyze = sub.add_parser(
        "analyze",
        help="static lock-order + guarded-by concurrency analysis",
        description="Scan Python packages for lock declarations, build "
        "the interprocedural acquired-while-holding graph, and report "
        "potential deadlock cycles, guarded-by violations, and drift "
        "against the checked-in lock-hierarchy baseline "
        "(tools/concurrency_baseline.json).  Exits 0 when clean, 1 on "
        "findings, 2 on usage errors.",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        help="packages or files to analyze (default: the installed "
        "repro package)",
    )
    analyze.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON (default: tools/concurrency_baseline.json "
        "when it exists)",
    )
    analyze.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip baseline drift checking (cycles + guarded-by only)",
    )
    analyze.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline's edge set from the current tree",
    )
    analyze.add_argument(
        "--graph",
        action="store_true",
        help="print the acquired-while-holding graph before findings",
    )
    return parser


_COMMANDS = {
    "concerns": _cmd_concerns,
    "info": _cmd_info,
    "validate": _cmd_validate,
    "apply": _cmd_apply,
    "pipeline": _cmd_pipeline,
    "generate": _cmd_generate,
    "fingerprint": _cmd_fingerprint,
    "simulate": _cmd_simulate,
    "deploy": _cmd_deploy,
    "node": _cmd_node,
    "trace": _cmd_trace,
    "analyze": _cmd_analyze,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
