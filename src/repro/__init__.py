"""repro — a reproduction of *Generic Concern-Oriented Model
Transformations Meet AOP* (Silaghi & Strohmeier, MIDDLEWARE 2003 workshop).

The library implements the complete system the paper describes, from
scratch (see DESIGN.md for the inventory and substitutions):

==========  ====================================================
package     role
==========  ====================================================
metamodel   EMOF-like reflective metamodeling kernel (S1)
uml         UML 1.4 subset metamodel + profiles (S2)
ocl         OCL expression language: parser + evaluator (S3)
xmi         XMI import/export (S4)
repository  versioned repository, undo/redo, diff, demarcation (S5)
transform   transformation engine with OCL pre/postconditions (S6)
workflow    workflow-guided refinement + concern wizards (S7)
aop         join points, pointcuts, advice, runtime weaver (S8)
codegen     functional code generator + aspect generators (S9)
middleware  simulated ORB, transactions, security substrate (S10)
concerns    distribution / transactions / security / logging (S11)
core        GMT/CMT/GA/CA, shared Si, precedence, lifecycle (S12)
pipeline    configuration pass-manager: plan/schedule/execute (S13)
==========  ====================================================

Quickstart::

    from repro import MdaLifecycle, new_model
    from repro.uml import add_class, add_operation, ensure_primitives

    resource, model = new_model("bank")
    # ...build the functional PIM...
    lifecycle = MdaLifecycle(resource)
    lifecycle.apply_concern("transactions",
                            transactional_ops=["Account.withdraw"],
                            state_classes=["Account"])
    app = lifecycle.build_application()
"""

from repro.core import (
    Concern,
    ConcernRegistry,
    ConcreteAspect,
    ConcreteTransformation,
    GenericAspect,
    GenericTransformation,
    MdaLifecycle,
    MiddlewareServices,
    Parameter,
    ParameterSet,
    ParameterSignature,
)
from repro.pipeline import ConfigurationPlan, PipelineExecutor, Scheduler
from repro.uml.model import new_model

__version__ = "0.2.0"

__all__ = [
    "Concern",
    "ConcernRegistry",
    "GenericTransformation",
    "ConcreteTransformation",
    "GenericAspect",
    "ConcreteAspect",
    "Parameter",
    "ParameterSignature",
    "ParameterSet",
    "MiddlewareServices",
    "MdaLifecycle",
    "ConfigurationPlan",
    "Scheduler",
    "PipelineExecutor",
    "new_model",
    "__version__",
]
