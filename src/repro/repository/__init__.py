"""S5 — Versioned model repository (Section 3 requirement).

The paper asks for "version management capabilities for the model
repository" and "an Undo/Redo facility for model transformations", plus a
visual-demarcation facility attributing model elements to the concern whose
transformation introduced them.  This package provides:

* :class:`~repro.repository.undo.ChangeRecorder` /
  :class:`~repro.repository.undo.UndoStack` — replayable change log built
  on the S1 notification stream, grouped into named, undoable units;
* :class:`~repro.repository.versioning.VersionHistory` — snapshot-based
  commits with checkout;
* :func:`~repro.repository.diff.diff_resources` — structural model diff;
* :class:`~repro.repository.demarcation.DemarcationTable` — the "colors":
  per-concern attribution of added/modified elements;
* :class:`~repro.repository.repository.ModelRepository` — the facade tying
  these together around one :class:`~repro.metamodel.instances.ModelResource`.
"""

from repro.repository.undo import ChangeRecorder, UndoStack
from repro.repository.versioning import Version, VersionHistory
from repro.repository.diff import DiffEntry, diff_resources, diff_snapshots
from repro.repository.demarcation import DemarcationTable
from repro.repository.repository import ModelRepository

__all__ = [
    "ChangeRecorder",
    "UndoStack",
    "Version",
    "VersionHistory",
    "DiffEntry",
    "diff_resources",
    "diff_snapshots",
    "DemarcationTable",
    "ModelRepository",
]
