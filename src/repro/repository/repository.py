"""The repository facade: one resource + undo/redo + versions + demarcation.

:class:`ModelRepository` is what the transformation engine (S6) and the
MDA lifecycle driver (S12) talk to.  Typical use::

    repo = ModelRepository(resource)
    with repo.transaction("apply distribution CMT"):
        ...mutate the model...
    repo.undo()           # the whole transformation is one undoable unit
    repo.redo()
    v1 = repo.commit("after distribution")
    repo.checkout(v1.id)
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional

from repro.errors import RepositoryError
from repro.metamodel.instances import ModelResource
from repro.repository.demarcation import DemarcationTable
from repro.repository.diff import DiffEntry, diff_snapshots
from repro.repository.undo import ChangeRecorder, UndoStack
from repro.repository.versioning import Version, VersionHistory


class ModelRepository:
    """Versioned, undoable, concern-demarcated store around one resource."""

    def __init__(self, resource: ModelResource, undo_limit: int = 1000):
        self.resource = resource
        self.recorder = ChangeRecorder(resource)
        self.undo_stack = UndoStack(self.recorder, limit=undo_limit)
        self.history = VersionHistory(resource)
        self.demarcation = DemarcationTable(resource)
        # key demarcation by origin uuid so it survives checkouts
        self.demarcation.set_identity_function(
            lambda obj: self.history.origin_uuid(obj)
        )
        self._in_transaction = False

    # -- transactions (undo units) -----------------------------------------------

    @contextlib.contextmanager
    def transaction(self, label: str, concern: Optional[str] = None):
        """Group all changes in the block into one undoable unit.

        When ``concern`` is given, added/modified elements are painted in
        the demarcation table under that concern.
        """
        if self._in_transaction:
            raise RepositoryError("repository transactions do not nest")
        self._in_transaction = True
        self.recorder.take()  # drop unattributed changes made outside transactions
        paint = (
            self.demarcation.painting(concern)
            if concern is not None
            else contextlib.nullcontext()
        )
        try:
            with paint:
                yield self
        except Exception:
            # roll the partial unit back so the model is untouched
            partial = self.recorder.take()
            with self.recorder.paused():
                from repro.repository.undo import _apply_inverse

                for notification in reversed(partial):
                    _apply_inverse(notification)
            raise
        finally:
            self._in_transaction = False
        self.undo_stack.push_group(label, self.recorder.take())

    def undo(self):
        """Undo the most recent transaction; returns its label."""
        return self.undo_stack.undo().label

    def redo(self):
        """Redo the most recently undone transaction; returns its label."""
        return self.undo_stack.redo().label

    # -- versions ------------------------------------------------------------------

    def commit(self, label: str) -> Version:
        """Commit the current state as a new version."""
        return self.history.commit(label)

    def checkout(self, version_id: str) -> Dict[str, str]:
        """Restore a committed version (clears the undo/redo stacks).

        Object identities change; the returned map links new live uuids to
        origin uuids.
        """
        with self.recorder.paused():
            origin_map = self.history.checkout(version_id)
        self.recorder.take()
        self.undo_stack._undo.clear()
        self.undo_stack._redo.clear()
        return origin_map

    def diff(self, version_a: str, version_b: str) -> List[DiffEntry]:
        """Structural diff between two committed versions."""
        return diff_snapshots(self.history.get(version_a), self.history.get(version_b))

    def log(self) -> List[str]:
        """Commit labels, oldest first."""
        return [f"{v.id}: {v.label}" for v in self.history.versions]
