"""Structural model diff between two resources or version snapshots.

Objects on the two sides are matched by a caller-supplied identity key
(origin uuid for version snapshots); the diff reports objects added,
removed, and per-feature modifications.  Reference values are compared by
the identity keys of their targets, so a pointer to "the same" object in
both versions compares equal even though the Python identities differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.metamodel.instances import MList, MObject
from repro.metamodel.kernel import MetaReference


@dataclass(frozen=True)
class DiffEntry:
    """One difference: ``kind`` is ``added``, ``removed`` or ``modified``."""

    kind: str
    key: str
    label: str
    feature: Optional[str] = None
    old: object = None
    new: object = None

    def __str__(self):
        if self.kind == "modified":
            return f"modified {self.label}.{self.feature}: {self.old!r} -> {self.new!r}"
        return f"{self.kind} {self.label}"


def _label(obj: MObject) -> str:
    name = obj._slots.get("name")
    suffix = name if isinstance(name, str) else obj.uuid
    return f"{obj.meta_class.name}({suffix})"


def _index(
    objects: Iterable[MObject], key: Callable[[MObject], str]
) -> Dict[str, MObject]:
    out: Dict[str, MObject] = {}
    for obj in objects:
        out[key(obj)] = obj
    return out


def _feature_value(obj: MObject, feature, key: Callable[[MObject], str]):
    value = obj._slots.get(feature.name)
    if isinstance(feature, MetaReference):
        if value is None:
            return None
        if isinstance(value, MList):
            return tuple(key(t) for t in value)
        return key(value)
    if isinstance(value, MList):
        return tuple(value)
    return value


def diff_object_sets(
    left: Iterable[MObject],
    right: Iterable[MObject],
    key_left: Callable[[MObject], str],
    key_right: Callable[[MObject], str],
) -> List[DiffEntry]:
    """Diff two object populations matched by identity keys."""
    left_index = _index(left, key_left)
    right_index = _index(right, key_right)
    entries: List[DiffEntry] = []

    for key, obj in left_index.items():
        if key not in right_index:
            entries.append(DiffEntry("removed", key, _label(obj)))
    for key, obj in right_index.items():
        if key not in left_index:
            entries.append(DiffEntry("added", key, _label(obj)))

    for key in left_index.keys() & right_index.keys():
        old_obj, new_obj = left_index[key], right_index[key]
        if old_obj.meta_class is not new_obj.meta_class:
            entries.append(
                DiffEntry(
                    "modified", key, _label(new_obj), "<metaclass>",
                    old_obj.meta_class.name, new_obj.meta_class.name,
                )
            )
            continue
        for feature in old_obj.meta_class.all_features().values():
            old_value = _feature_value(old_obj, feature, key_left)
            new_value = _feature_value(new_obj, feature, key_right)
            if old_value != new_value:
                entries.append(
                    DiffEntry(
                        "modified", key, _label(new_obj), feature.name,
                        old_value, new_value,
                    )
                )
    entries.sort(key=lambda e: (e.kind, e.key, e.feature or ""))
    return entries


def diff_resources(left, right, key_left=None, key_right=None) -> List[DiffEntry]:
    """Diff two resources; defaults to uuid identity (same-lineage objects)."""
    key_left = key_left or (lambda o: o.uuid)
    key_right = key_right or (lambda o: o.uuid)
    return diff_object_sets(
        left.all_contents(), right.all_contents(), key_left, key_right
    )


def diff_snapshots(version_a, version_b) -> List[DiffEntry]:
    """Diff two :class:`~repro.repository.versioning.Version` snapshots.

    Objects are matched by their recorded *origin* uuids, so a model element
    that survived from one commit to the next compares as the same object.
    """

    def key_a(obj):
        return version_a.origin_of.get(obj.uuid, obj.uuid)

    def key_b(obj):
        return version_b.origin_of.get(obj.uuid, obj.uuid)

    def contents(version):
        for root in version.roots:
            yield root
            yield from root.all_contents()

    return diff_object_sets(contents(version_a), contents(version_b), key_a, key_b)
