"""Undo/redo built on the replayable S1 notification stream.

Every raw change is invertible (see
:mod:`repro.metamodel.notifications`); a :class:`ChangeRecorder`
subscribed to a resource captures the stream, and an :class:`UndoStack`
groups contiguous changes into named units that can be undone and redone.

Replays are performed with the recorder *paused* and use the raw mutation
layer directly, so opposite-maintenance side effects (which were recorded
as their own notifications) are not re-derived a second time.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import List

from repro.errors import NothingToRedoError, NothingToUndoError, RepositoryError
from repro.metamodel.instances import ROOTS_FEATURE, MList, ModelResource
from repro.metamodel.notifications import Notification, NotificationKind


def _apply_forward(notification: Notification) -> None:
    obj, feature = notification.obj, notification.feature
    kind = notification.kind
    if feature is ROOTS_FEATURE:
        if kind is NotificationKind.ADD:
            obj.add_root(notification.new)
        else:
            obj.remove_root(notification.old)
        return
    if kind is NotificationKind.SET:
        obj._slot_set(feature, notification.new)
    elif kind is NotificationKind.UNSET:
        obj._slot_unset(feature)
    elif kind is NotificationKind.ADD:
        collection: MList = obj.get(feature.name)
        collection._raw_insert(notification.index, notification.new)
    elif kind is NotificationKind.REMOVE:
        collection = obj.get(feature.name)
        collection._raw_remove(notification.index)
    else:  # pragma: no cover - exhaustive enum
        raise RepositoryError(f"unknown notification kind {kind}")


def _apply_inverse(notification: Notification) -> None:
    obj, feature = notification.obj, notification.feature
    kind = notification.kind
    if feature is ROOTS_FEATURE:
        if kind is NotificationKind.ADD:
            obj.remove_root(notification.new)
        else:
            obj.add_root(notification.old)
        return
    if kind is NotificationKind.SET:
        if notification.old is None:
            obj._slot_unset(feature)
        else:
            obj._slot_set(feature, notification.old)
    elif kind is NotificationKind.UNSET:
        obj._slot_set(feature, notification.old)
    elif kind is NotificationKind.ADD:
        collection: MList = obj.get(feature.name)
        collection._raw_remove(notification.index)
    elif kind is NotificationKind.REMOVE:
        collection = obj.get(feature.name)
        collection._raw_insert(notification.index, notification.old)
    else:  # pragma: no cover - exhaustive enum
        raise RepositoryError(f"unknown notification kind {kind}")


class ChangeRecorder:
    """Captures the notification stream of a resource; pausable."""

    def __init__(self, resource: ModelResource):
        self.resource = resource
        self.changes: List[Notification] = []
        self._paused = 0
        resource.subscribe(self._on_change)

    def _on_change(self, notification: Notification) -> None:
        if not self._paused:
            self.changes.append(notification)

    @contextlib.contextmanager
    def paused(self):
        """Suspend recording (used during undo/redo replay)."""
        self._paused += 1
        try:
            yield
        finally:
            self._paused -= 1

    def take(self) -> List[Notification]:
        """Return the captured changes and reset the buffer."""
        captured, self.changes = self.changes, []
        return captured

    def detach(self) -> None:
        self.resource.unsubscribe(self._on_change)


@dataclass
class ChangeGroup:
    """A named, contiguous sequence of changes — one undoable unit."""

    label: str
    changes: List[Notification] = field(default_factory=list)

    def __len__(self):
        return len(self.changes)


class UndoStack:
    """Classic undo/redo stacks over :class:`ChangeGroup` units.

    ``push_group`` is called with the changes captured since the previous
    group boundary; pushing clears the redo stack.
    """

    def __init__(self, recorder: ChangeRecorder, limit: int = 1000):
        if limit < 1:
            raise RepositoryError("undo limit must be >= 1")
        self.recorder = recorder
        self.limit = limit
        self._undo: List[ChangeGroup] = []
        self._redo: List[ChangeGroup] = []

    @property
    def undo_labels(self) -> List[str]:
        return [g.label for g in self._undo]

    @property
    def redo_labels(self) -> List[str]:
        return [g.label for g in self._redo]

    def can_undo(self) -> bool:
        return bool(self._undo)

    def can_redo(self) -> bool:
        return bool(self._redo)

    def push_group(self, label: str, changes: List[Notification]) -> ChangeGroup:
        group = ChangeGroup(label, list(changes))
        self._undo.append(group)
        if len(self._undo) > self.limit:
            self._undo.pop(0)
        self._redo.clear()
        return group

    def undo(self) -> ChangeGroup:
        """Revert the most recent group; returns it."""
        if not self._undo:
            raise NothingToUndoError("undo stack is empty")
        group = self._undo.pop()
        with self.recorder.paused():
            for notification in reversed(group.changes):
                _apply_inverse(notification)
        self._redo.append(group)
        return group

    def redo(self) -> ChangeGroup:
        """Re-apply the most recently undone group; returns it."""
        if not self._redo:
            raise NothingToRedoError("redo stack is empty")
        group = self._redo.pop()
        with self.recorder.paused():
            for notification in group.changes:
                _apply_forward(notification)
        self._undo.append(group)
        return group
