"""Snapshot-based version management for model resources.

A :class:`Version` is an immutable deep clone of the resource's containment
forest plus an identity map tracing every snapshot object back to the
*origin* uuid of the live object it was cloned from.  Checking a version
out replaces the resource contents with fresh clones of the snapshot and
returns the origin map for the new live objects, which lets bookkeeping
keyed by uuid (the demarcation table, trace links) survive checkouts.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import NoSuchVersionError
from repro.metamodel.instances import MObject, ModelResource, deep_clone

_version_counter = itertools.count(1)


class Version:
    """One committed snapshot of a resource."""

    def __init__(
        self,
        label: str,
        roots: List[MObject],
        origin_of: Dict[str, str],
        parent: Optional["Version"],
    ):
        self.id = f"v{next(_version_counter)}"
        self.label = label
        self.created_at = time.time()
        self.parent = parent
        self._roots = roots              # detached clones; never mutated
        #: snapshot-object uuid → origin uuid of the live object at commit time
        self.origin_of = origin_of

    @property
    def roots(self) -> Tuple[MObject, ...]:
        return tuple(self._roots)

    def materialize(self) -> Tuple[List[MObject], Dict[str, str]]:
        """Clone the snapshot into fresh, mutable objects.

        Returns ``(roots, origin_map)`` where ``origin_map`` maps each new
        object's uuid to the origin uuid recorded at commit time.
        """
        clones, by_snapshot_uuid = deep_clone(self._roots)
        origin_map = {
            clone.uuid: self.origin_of.get(snapshot_uuid, snapshot_uuid)
            for snapshot_uuid, clone in by_snapshot_uuid.items()
        }
        return clones, origin_map

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Version {self.id} {self.label!r}>"


class VersionHistory:
    """Linear-with-parents version history over one resource."""

    def __init__(self, resource: ModelResource):
        self.resource = resource
        self._versions: Dict[str, Version] = {}
        self._order: List[str] = []
        self.head: Optional[Version] = None
        #: live uuid → origin uuid (identity thread across checkouts)
        self._live_origin: Dict[str, str] = {}

    @property
    def versions(self) -> List[Version]:
        return [self._versions[v] for v in self._order]

    def origin_uuid(self, obj: MObject) -> str:
        """The identity key of a live object, stable across checkouts."""
        return self._live_origin.get(obj.uuid, obj.uuid)

    def commit(self, label: str) -> Version:
        """Snapshot the current resource state as a new version."""
        clones, by_origin = deep_clone(self.resource.roots)
        origin_of = {
            clone.uuid: self._live_origin.get(live_uuid, live_uuid)
            for live_uuid, clone in by_origin.items()
        }
        version = Version(label, clones, origin_of, parent=self.head)
        self._versions[version.id] = version
        self._order.append(version.id)
        self.head = version
        return version

    def get(self, version_id: str) -> Version:
        try:
            return self._versions[version_id]
        except KeyError:
            raise NoSuchVersionError(f"no version {version_id!r}") from None

    def checkout(self, version_id: str) -> Dict[str, str]:
        """Replace the resource contents with a clone of ``version_id``.

        Returns the new live-uuid → origin-uuid map (also retained
        internally for :meth:`origin_uuid`).  Object identities change:
        holders of references into the resource must re-resolve.
        """
        version = self.get(version_id)
        roots, origin_map = version.materialize()
        for root in list(self.resource.roots):
            self.resource.remove_root(root)
        for root in roots:
            self.resource.add_root(root)
        self._live_origin = dict(origin_map)
        self.head = version
        return origin_map
