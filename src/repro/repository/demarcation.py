"""Concern demarcation — the paper's "colors" (Section 3).

    "Visual tools capable of demarcating model parts that have been added
    to the model through different specialized/concrete transformations by
    using different colors. An association list between these colors and
    the concerns that have already been covered would be helpful [...]"

The :class:`DemarcationTable` listens to a resource while a concern's
transformation runs (``with table.painting("transactions"): ...``) and
attributes every element that *enters the resource tree* during that window
to the concern; elements merely modified are recorded as *touched*.  The
table renders the association list (concern → color → elements) and the
covered/remaining concern lists the paper asks for.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterable, List, Optional, Set

from repro.metamodel.instances import MObject, ModelResource
from repro.metamodel.notifications import Notification, NotificationKind

#: Deterministic color cycle assigned to concerns in first-painted order.
COLOR_CYCLE = (
    "red", "blue", "green", "orange", "purple", "teal", "magenta", "olive",
)


class DemarcationTable:
    """Attribution of model elements to the concern that introduced them."""

    def __init__(self, resource: ModelResource):
        self.resource = resource
        #: element origin-uuid → concern name that added it
        self._added_by: Dict[str, str] = {}
        #: concern name → set of origin-uuids it modified (but did not add)
        self._touched_by: Dict[str, Set[str]] = {}
        self._colors: Dict[str, str] = {}
        self._active: Optional[str] = None
        self._identity = lambda obj: obj.uuid
        resource.subscribe(self._on_change)

    def set_identity_function(self, fn) -> None:
        """Key elements by a stable identity (e.g. version-origin uuid)."""
        self._identity = fn

    def remap_keys(self, origin_map: Dict[str, str]) -> None:
        """No-op placeholder kept for API symmetry: tables keyed by origin
        uuid survive checkouts when the identity function resolves through
        :meth:`~repro.repository.versioning.VersionHistory.origin_uuid`."""

    # -- painting -----------------------------------------------------------

    @contextlib.contextmanager
    def painting(self, concern: str):
        """Attribute changes inside the ``with`` block to ``concern``."""
        if concern not in self._colors:
            self._colors[concern] = COLOR_CYCLE[len(self._colors) % len(COLOR_CYCLE)]
        self._touched_by.setdefault(concern, set())
        previous, self._active = self._active, concern
        try:
            yield self
        finally:
            self._active = previous

    def _on_change(self, notification: Notification) -> None:
        if self._active is None:
            return
        concern = self._active
        kind = notification.kind
        feature = notification.feature
        containment = getattr(feature, "containment", False)
        if containment and kind in (NotificationKind.ADD, NotificationKind.SET):
            added = notification.new
            if isinstance(added, MObject):
                self._mark_added(added, concern)
                for child in added.all_contents():
                    self._mark_added(child, concern)
            return
        obj = notification.obj
        if isinstance(obj, MObject):
            key = self._identity(obj)
            if self._added_by.get(key) != concern:
                self._touched_by[concern].add(key)

    def _mark_added(self, obj: MObject, concern: str) -> None:
        key = self._identity(obj)
        if key not in self._added_by:
            self._added_by[key] = concern

    # -- queries -------------------------------------------------------------

    def concern_of(self, obj: MObject) -> Optional[str]:
        """The concern that introduced ``obj``, or None (functional model)."""
        return self._added_by.get(self._identity(obj))

    def color_of(self, obj: MObject) -> Optional[str]:
        concern = self.concern_of(obj)
        return self._colors.get(concern) if concern is not None else None

    def elements_of(self, concern: str) -> List[MObject]:
        """Live elements attributed to ``concern`` (added by it)."""
        keys = {k for k, c in self._added_by.items() if c == concern}
        return [o for o in self.resource.all_contents() if self._identity(o) in keys]

    def touched_elements_of(self, concern: str) -> List[MObject]:
        keys = self._touched_by.get(concern, set())
        return [o for o in self.resource.all_contents() if self._identity(o) in keys]

    def covered_concerns(self) -> List[str]:
        """Concerns that have painted at least once, in first-painted order."""
        return list(self._colors)

    def remaining_concerns(self, planned: Iterable[str]) -> List[str]:
        covered = set(self._colors)
        return [c for c in planned if c not in covered]

    def legend(self) -> Dict[str, str]:
        """Concern → color association list."""
        return dict(self._colors)

    def report(self) -> str:
        """Plain-text rendering of the association list with element counts."""
        lines = ["concern demarcation:"]
        live_keys = {self._identity(o) for o in self.resource.all_contents()}
        for concern, color in self._colors.items():
            added = sum(
                1 for k, c in self._added_by.items() if c == concern and k in live_keys
            )
            touched = len(self._touched_by.get(concern, set()) & live_keys)
            lines.append(
                f"  [{color:>7}] {concern}: {added} element(s) added, {touched} touched"
            )
        return "\n".join(lines)
