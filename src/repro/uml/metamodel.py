"""Definition of the UML subset metamodel used throughout the library.

The metamodel is built once at import time with the S1 kernel and exposed
through the :data:`UML` namespace, e.g. ``UML.Class``, ``UML.Operation``.
It covers the structural core of UML 1.4 class models plus the profile
mechanism (stereotype applications carrying tagged values), which is what
MDA-era concern-oriented transformations mark models up with.
"""

from __future__ import annotations

from repro.metamodel import (
    ANY,
    BOOLEAN,
    INTEGER,
    STRING,
    UNBOUNDED,
    MetamodelBuilder,
)

#: Visibility literals (UML ``VisibilityKind``).
VISIBILITY = ("public", "private", "protected", "package")

#: Parameter direction literals (UML ``ParameterDirectionKind``).
PARAMETER_DIRECTION = ("in", "out", "inout", "return")

#: Aggregation literals (UML ``AggregationKind``).
AGGREGATION = ("none", "shared", "composite")


class _UmlNamespace:
    """Holds the built UML metamodel package and its metaclasses."""


def _build() -> _UmlNamespace:
    b = MetamodelBuilder("uml")
    ns = _UmlNamespace()

    visibility_kind = b.enum("VisibilityKind", VISIBILITY)
    direction_kind = b.enum("ParameterDirectionKind", PARAMETER_DIRECTION)
    aggregation_kind = b.enum("AggregationKind", AGGREGATION)

    element = b.metaclass("Element", abstract=True)

    tagged_value = b.metaclass("TaggedValue", superclasses=[element])
    b.attribute(tagged_value, "tag", STRING, lower=1)
    b.attribute(tagged_value, "value", ANY)

    stereotype_app = b.metaclass("StereotypeApplication", superclasses=[element])
    b.attribute(stereotype_app, "name", STRING, lower=1)
    b.reference(
        stereotype_app, "taggedValues", tagged_value, upper=UNBOUNDED, containment=True
    )

    named = b.metaclass("NamedElement", superclasses=[element], abstract=True)
    b.attribute(named, "name", STRING, lower=1)
    b.attribute(named, "visibility", visibility_kind, default="public")
    b.attribute(named, "documentation", STRING)
    b.reference(named, "stereotypes", stereotype_app, upper=UNBOUNDED, containment=True)

    packageable = b.metaclass("PackageableElement", superclasses=[named], abstract=True)

    package = b.metaclass("Package", superclasses=[packageable])
    b.reference(
        package, "ownedElements", packageable, upper=UNBOUNDED, containment=True
    )

    model = b.metaclass("Model", superclasses=[package])

    classifier = b.metaclass("Classifier", superclasses=[packageable], abstract=True)
    b.attribute(classifier, "isAbstract", BOOLEAN, default=False)

    datatype = b.metaclass("DataType", superclasses=[classifier])

    enum_literal = b.metaclass("EnumerationLiteral", superclasses=[named])
    enumeration = b.metaclass("Enumeration", superclasses=[datatype])
    b.reference(
        enumeration, "literals", enum_literal, upper=UNBOUNDED, containment=True
    )

    parameter = b.metaclass("Parameter", superclasses=[named])
    b.reference(parameter, "type", classifier)
    b.attribute(parameter, "direction", direction_kind, default="in")
    b.attribute(parameter, "defaultValue", STRING)

    operation = b.metaclass("Operation", superclasses=[named])
    b.reference(operation, "parameters", parameter, upper=UNBOUNDED, containment=True)
    b.attribute(operation, "isAbstract", BOOLEAN, default=False)
    b.attribute(operation, "isQuery", BOOLEAN, default=False)
    b.attribute(operation, "isStatic", BOOLEAN, default=False)

    prop = b.metaclass("Property", superclasses=[named])
    b.reference(prop, "type", classifier)
    b.attribute(prop, "lower", INTEGER, default=1)
    b.attribute(prop, "upper", INTEGER, default=1)  # UNBOUNDED (-1) means '*'
    b.attribute(prop, "isComposite", BOOLEAN, default=False)
    b.attribute(prop, "isStatic", BOOLEAN, default=False)
    b.attribute(prop, "defaultValue", STRING)

    interface = b.metaclass("Interface", superclasses=[classifier])
    b.reference(interface, "operations", operation, upper=UNBOUNDED, containment=True)

    clazz = b.metaclass("Class", superclasses=[classifier])
    b.reference(clazz, "superclasses", clazz, upper=UNBOUNDED)
    b.reference(clazz, "interfaces", interface, upper=UNBOUNDED)
    b.reference(clazz, "attributes", prop, upper=UNBOUNDED, containment=True)
    b.reference(clazz, "operations", operation, upper=UNBOUNDED, containment=True)

    association_end = b.metaclass("AssociationEnd", superclasses=[named])
    b.reference(association_end, "type", classifier, lower=1)
    b.attribute(association_end, "lower", INTEGER, default=0)
    b.attribute(association_end, "upper", INTEGER, default=UNBOUNDED)
    b.attribute(association_end, "navigable", BOOLEAN, default=True)
    b.attribute(association_end, "aggregation", aggregation_kind, default="none")

    association = b.metaclass("Association", superclasses=[packageable])
    b.reference(
        association, "ends", association_end, lower=2, upper=2, containment=True
    )

    dependency = b.metaclass("Dependency", superclasses=[packageable])
    b.reference(dependency, "client", named, lower=1)
    b.reference(dependency, "supplier", named, lower=1)
    b.attribute(dependency, "kind", STRING)

    ns.package = b.build()
    ns.VisibilityKind = visibility_kind
    ns.ParameterDirectionKind = direction_kind
    ns.AggregationKind = aggregation_kind
    ns.Element = element
    ns.NamedElement = named
    ns.PackageableElement = packageable
    ns.Package = package
    ns.Model = model
    ns.Classifier = classifier
    ns.DataType = datatype
    ns.Enumeration = enumeration
    ns.EnumerationLiteral = enum_literal
    ns.Class = clazz
    ns.Interface = interface
    ns.Property = prop
    ns.Operation = operation
    ns.Parameter = parameter
    ns.Association = association
    ns.AssociationEnd = association_end
    ns.Dependency = dependency
    ns.TaggedValue = tagged_value
    ns.StereotypeApplication = stereotype_app
    return ns


#: The UML metamodel namespace; import this everywhere.
UML = _build()
