"""S2 — A UML 1.4 subset metamodel and convenience model API.

The paper's transformations operate on UML models (class diagrams with
stereotypes and tagged values, per common MDA practice of the era).  This
package defines that modeling language *as a metamodel* on top of the S1
kernel — packages, classes, attributes, operations, parameters,
associations, interfaces, enumerations — plus lightweight profile support
(stereotype applications with tagged values) and a factory/query API.
"""

from repro.uml.metamodel import UML, VISIBILITY, PARAMETER_DIRECTION, AGGREGATION
from repro.uml.model import (
    add_association,
    add_attribute,
    add_class,
    add_interface,
    add_operation,
    add_package,
    add_parameter,
    classes_of,
    ensure_primitives,
    find_element,
    new_model,
    operations_of,
    owned_elements,
    qualified_name,
)
from repro.uml.profiles import (
    apply_stereotype,
    get_stereotype,
    get_tag,
    has_stereotype,
    remove_stereotype,
    set_tag,
    stereotype_names,
)

__all__ = [
    "UML",
    "VISIBILITY",
    "PARAMETER_DIRECTION",
    "AGGREGATION",
    "new_model",
    "add_package",
    "add_class",
    "add_interface",
    "add_attribute",
    "add_operation",
    "add_parameter",
    "add_association",
    "ensure_primitives",
    "find_element",
    "qualified_name",
    "classes_of",
    "operations_of",
    "owned_elements",
    "apply_stereotype",
    "remove_stereotype",
    "has_stereotype",
    "get_stereotype",
    "stereotype_names",
    "set_tag",
    "get_tag",
]
