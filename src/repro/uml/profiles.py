"""Lightweight UML profile support: stereotypes and tagged values.

Concern-oriented transformations mark model elements with stereotypes such
as ``<<Transactional>>`` or ``<<Secured>>`` and attach parameters as tagged
values; the demarcation facility of the repository (S5) and the aspect
generators (S9) read these marks back.  Stereotype applications are plain
model elements (``UML.StereotypeApplication`` contained by the
``stereotypes`` feature of every named element) so they version, diff and
serialize like everything else.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import ModelError
from repro.metamodel import MObject
from repro.uml.metamodel import UML


def apply_stereotype(element: MObject, name: str, **tags) -> MObject:
    """Apply stereotype ``name`` to ``element`` with optional tagged values.

    Re-applying an existing stereotype merges the tagged values into the
    existing application instead of duplicating it.
    """
    app = get_stereotype(element, name)
    if app is None:
        app = UML.StereotypeApplication(name=name)
        element.stereotypes.append(app)
    for tag, value in tags.items():
        set_tag(app, tag, value)
    return app


def remove_stereotype(element: MObject, name: str) -> bool:
    """Remove a stereotype application; returns whether one was present."""
    app = get_stereotype(element, name)
    if app is None:
        return False
    element.stereotypes.remove(app)
    return True


def get_stereotype(element: MObject, name: str) -> Optional[MObject]:
    """The application of stereotype ``name`` on ``element``, if any."""
    if not element.meta_class.has_feature("stereotypes"):
        return None
    for app in element.stereotypes:
        if app.name == name:
            return app
    return None


def has_stereotype(element: MObject, name: str) -> bool:
    return get_stereotype(element, name) is not None


def stereotype_names(element: MObject) -> Iterator[str]:
    if element.meta_class.has_feature("stereotypes"):
        for app in element.stereotypes:
            yield app.name


def set_tag(app: MObject, tag: str, value) -> MObject:
    """Set a tagged value on a stereotype application (overwrites)."""
    for tv in app.taggedValues:
        if tv.tag == tag:
            tv.value = value
            return tv
    tv = UML.TaggedValue(tag=tag, value=value)
    app.taggedValues.append(tv)
    return tv


def get_tag(element: MObject, stereotype: str, tag: str, default=None):
    """Read a tagged value through ``element``'s stereotype application."""
    app = get_stereotype(element, stereotype)
    if app is None:
        return default
    for tv in app.taggedValues:
        if tv.tag == tag:
            return tv.value
    return default


def require_tag(element: MObject, stereotype: str, tag: str):
    """Like :func:`get_tag` but raises when the tag is absent."""
    sentinel = object()
    value = get_tag(element, stereotype, tag, sentinel)
    if value is sentinel:
        raise ModelError(
            f"element {element!r} lacks tagged value {tag!r} of stereotype {stereotype!r}"
        )
    return value
