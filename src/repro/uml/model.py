"""Factory and query helpers for building and navigating UML models.

These helpers wrap the reflective S1 API into the vocabulary a modeler
expects (``add_class``, ``add_operation``...).  All of them return the
created :class:`~repro.metamodel.instances.MObject` so calls compose.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.errors import ModelError
from repro.metamodel import UNBOUNDED, MObject, ModelResource
from repro.uml.metamodel import UML

#: The UML primitive datatype names installed by :func:`ensure_primitives`.
PRIMITIVE_TYPE_NAMES = ("String", "Integer", "Boolean", "Real")


def new_model(name: str) -> Tuple[ModelResource, MObject]:
    """Create a fresh resource holding an empty UML ``Model`` root."""
    resource = ModelResource(name)
    model = UML.Model(name=name)
    resource.add_root(model)
    return resource, model


def ensure_primitives(model: MObject) -> dict:
    """Make sure the model owns the standard primitive datatypes.

    Returns a name → ``DataType`` element map.  Idempotent: existing
    datatypes (wherever they live inside the model) are reused.
    """
    existing = {
        el.name: el
        for el in model.all_contents()
        if el.isinstance_of(UML.DataType) and not el.isinstance_of(UML.Enumeration)
    }
    out = {}
    for type_name in PRIMITIVE_TYPE_NAMES:
        if type_name in existing:
            out[type_name] = existing[type_name]
        else:
            dt = UML.DataType(name=type_name)
            model.ownedElements.append(dt)
            out[type_name] = dt
    return out


def add_package(parent: MObject, name: str) -> MObject:
    """Create a ``Package`` inside ``parent`` (a Package or Model)."""
    pkg = UML.Package(name=name)
    parent.ownedElements.append(pkg)
    return pkg


def add_class(
    parent: MObject,
    name: str,
    abstract: bool = False,
    superclasses: Iterable[MObject] = (),
    interfaces: Iterable[MObject] = (),
) -> MObject:
    """Create a ``Class`` inside a package."""
    cls = UML.Class(name=name, isAbstract=abstract)
    parent.ownedElements.append(cls)
    for sup in superclasses:
        cls.superclasses.append(sup)
    for itf in interfaces:
        cls.interfaces.append(itf)
    return cls


def add_interface(parent: MObject, name: str) -> MObject:
    itf = UML.Interface(name=name)
    parent.ownedElements.append(itf)
    return itf


def add_attribute(
    cls: MObject,
    name: str,
    type_: Optional[MObject] = None,
    lower: int = 1,
    upper: int = 1,
    visibility: str = "private",
    default: Optional[str] = None,
    composite: bool = False,
) -> MObject:
    """Create a ``Property`` on a class."""
    prop = UML.Property(
        name=name, lower=lower, upper=upper, visibility=visibility, isComposite=composite
    )
    if type_ is not None:
        prop.type = type_
    if default is not None:
        prop.defaultValue = default
    cls.attributes.append(prop)
    return prop


ParamSpec = Union[Tuple[str, MObject], Tuple[str, MObject, str]]


def add_operation(
    owner: MObject,
    name: str,
    parameters: Sequence[ParamSpec] = (),
    return_type: Optional[MObject] = None,
    visibility: str = "public",
    abstract: bool = False,
    query: bool = False,
) -> MObject:
    """Create an ``Operation`` on a class or interface.

    ``parameters`` is a sequence of ``(name, type)`` or
    ``(name, type, direction)`` tuples; a return parameter is added when
    ``return_type`` is given.
    """
    op = UML.Operation(name=name, visibility=visibility, isAbstract=abstract, isQuery=query)
    owner.operations.append(op)
    for spec in parameters:
        if len(spec) == 2:
            pname, ptype = spec
            direction = "in"
        else:
            pname, ptype, direction = spec
        add_parameter(op, pname, ptype, direction)
    if return_type is not None:
        add_parameter(op, "result", return_type, "return")
    return op


def add_parameter(op: MObject, name: str, type_: Optional[MObject], direction: str = "in") -> MObject:
    param = UML.Parameter(name=name, direction=direction)
    if type_ is not None:
        param.type = type_
    op.parameters.append(param)
    return param


def add_association(
    parent: MObject,
    name: str,
    end1: Tuple[str, MObject],
    end2: Tuple[str, MObject],
    end1_multiplicity: Tuple[int, int] = (0, UNBOUNDED),
    end2_multiplicity: Tuple[int, int] = (0, UNBOUNDED),
) -> MObject:
    """Create a binary ``Association``; each end is ``(role_name, classifier)``."""
    assoc = UML.Association(name=name)
    parent.ownedElements.append(assoc)
    for (role, classifier), (lower, upper) in (
        (end1, end1_multiplicity),
        (end2, end2_multiplicity),
    ):
        end = UML.AssociationEnd(name=role, lower=lower, upper=upper)
        end.type = classifier
        assoc.ends.append(end)
    return assoc


# ---------------------------------------------------------------------------
# navigation / query helpers
# ---------------------------------------------------------------------------


def qualified_name(element: MObject) -> str:
    """Dot-separated path of ``name`` attributes up to the model root."""
    parts = []
    cur: Optional[MObject] = element
    while cur is not None:
        if cur.meta_class.has_feature("name") and cur.is_set("name"):
            parts.append(cur.get("name"))
        cur = cur.container
    return ".".join(reversed(parts))


def owned_elements(scope: MObject) -> Iterator[MObject]:
    """All packageable elements transitively owned by a package/model."""
    for el in scope.get("ownedElements"):
        yield el
        if el.isinstance_of(UML.Package):
            yield from owned_elements(el)


def classes_of(scope: MObject) -> Iterator[MObject]:
    """All ``Class`` elements under a package/model."""
    for el in owned_elements(scope):
        if el.isinstance_of(UML.Class):
            yield el


def operations_of(cls: MObject, inherited: bool = True) -> Iterator[MObject]:
    """Operations of a class, optionally including inherited ones.

    Operations overridden by subclass declarations (same name) are reported
    once, from the nearest class.
    """
    seen = set()
    stack = [cls]
    while stack:
        cur = stack.pop(0)
        for op in cur.operations:
            if op.name not in seen:
                seen.add(op.name)
                yield op
        if inherited:
            stack.extend(cur.superclasses)


def find_element(scope: MObject, qualified: str) -> MObject:
    """Resolve a dot-separated qualified name relative to ``scope``.

    ``scope`` is typically a Model; the path does not repeat the scope's own
    name.  Raises :class:`~repro.errors.ModelError` when not found.
    """
    cur = scope
    for part in qualified.split("."):
        nxt = None
        children: Iterable[MObject]
        if cur.meta_class.has_feature("ownedElements"):
            children = list(cur.get("ownedElements"))
        elif cur.isinstance_of(UML.Class):
            children = list(cur.attributes) + list(cur.operations)
        elif cur.isinstance_of(UML.Interface):
            children = list(cur.operations)
        elif cur.isinstance_of(UML.Enumeration):
            children = list(cur.literals)
        else:
            children = []
        for child in children:
            if child.meta_class.has_feature("name") and child.get("name") == part:
                nxt = child
                break
        if nxt is None:
            raise ModelError(f"no element {part!r} under {qualified_name(cur) or cur!r}")
        cur = nxt
    return cur
