"""Shipping and reuse of refined components (§2's closing questions).

The paper ends §2 asking: *"Should we ship only the last, most specialized
model, together with the implementation, or should we ship all the
intermediate models, together with the transformations and the set of
parameters that specialize each transformation? How should a developer
make reuse of the models, transformations, and aspects [...]?"*

This module implements the second option and makes it verifiable:

* :func:`ship` packs a finished lifecycle into a self-contained
  :class:`ComponentPackage` — the initial PIM (XMI), the ordered list of
  (concern, ``Si``) refinement steps, the final model (XMI), and the
  generated concrete-aspect sources.  Everything is JSON-serializable.
* :func:`replay` re-runs the shipped steps on the shipped initial model
  (in a fresh environment, against the receiver's registry) and verifies —
  via a structural fingerprint — that the replayed model is equivalent to
  the shipped final model.  A receiver can therefore audit, re-target, or
  re-parameterize the component instead of trusting an opaque artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ReproError
from repro.metamodel.instances import MObject, ModelResource
from repro.uml.metamodel import UML
from repro.uml.model import qualified_name
from repro.xmi import parse_xmi, xmi_string


class ShippingError(ReproError):
    """The package is malformed or the replay diverged from the shipped model."""


@dataclass(frozen=True)
class ShippedStep:
    """One refinement step: which concern, specialized with which Si."""

    concern: str
    transformation: str
    parameters: Dict[str, object]


@dataclass
class ComponentPackage:
    """Everything needed to reproduce (and audit) a refined component."""

    name: str
    initial_model_xmi: str
    final_model_xmi: str
    steps: List[ShippedStep] = field(default_factory=list)
    aspect_sources: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "repro-component-package/1",
                "name": self.name,
                "initial_model_xmi": self.initial_model_xmi,
                "final_model_xmi": self.final_model_xmi,
                "steps": [
                    {
                        "concern": s.concern,
                        "transformation": s.transformation,
                        "parameters": s.parameters,
                    }
                    for s in self.steps
                ],
                "aspect_sources": self.aspect_sources,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ComponentPackage":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ShippingError(f"not a component package: {exc}") from exc
        if data.get("format") != "repro-component-package/1":
            raise ShippingError("unknown package format")
        return cls(
            name=data["name"],
            initial_model_xmi=data["initial_model_xmi"],
            final_model_xmi=data["final_model_xmi"],
            steps=[
                ShippedStep(s["concern"], s["transformation"], s["parameters"])
                for s in data["steps"]
            ],
            aspect_sources=dict(data["aspect_sources"]),
        )


def _check_json_parameters(name: str, parameters: Dict[str, object]) -> None:
    try:
        round_tripped = json.loads(json.dumps(parameters))
    except (TypeError, ValueError) as exc:
        raise ShippingError(
            f"parameters of {name!r} are not JSON-serializable: {exc}"
        ) from exc
    if round_tripped != parameters:
        raise ShippingError(f"parameters of {name!r} do not survive JSON round-trip")


def ship(lifecycle) -> ComponentPackage:
    """Pack a lifecycle's history into a shippable component package.

    Requires at least one applied concern; the initial PIM is taken from
    the lifecycle's first repository commit (``MdaLifecycle`` commits the
    PIM before the first transformation).
    """
    if not lifecycle.applied:
        raise ShippingError("nothing to ship: no concern has been applied")
    versions = lifecycle.repository.history.versions
    if not versions:
        raise ShippingError("repository has no committed versions")
    initial_roots, _ = versions[0].materialize()
    initial = ModelResource(lifecycle.repository.resource.name)
    for root in initial_roots:
        initial.add_root(root)

    steps = []
    for cmt, _ca in lifecycle.applied:
        _check_json_parameters(cmt.name, cmt.parameters)
        steps.append(
            ShippedStep(cmt.concern, cmt.generic.name, cmt.parameters)
        )
    return ComponentPackage(
        name=lifecycle.repository.resource.name,
        initial_model_xmi=xmi_string(initial),
        final_model_xmi=xmi_string(lifecycle.repository.resource),
        steps=steps,
        aspect_sources=lifecycle.generate_aspect_sources(),
    )


# ---------------------------------------------------------------------------
# structural fingerprint (identity-free model equality)
# ---------------------------------------------------------------------------


def _element_path(obj: MObject) -> str:
    """A name-based path identifying an element independent of uuids."""
    named = qualified_name(obj)
    if named and obj.meta_class.has_feature("name") and obj.is_set("name"):
        return f"{obj.meta_class.name}:{named}"
    # unnamed elements (tagged values, parameters without names, ends):
    # anchor at the container path plus feature/index
    container = obj.container
    if container is None:
        return f"{obj.meta_class.name}:<root>"
    feature = obj.containing_feature
    siblings = container.get(feature.name)
    if feature.many:
        index = next(i for i, s in enumerate(siblings) if s is obj)
    else:
        index = 0
    return f"{_element_path(container)}/{feature.name}[{index}]:{obj.meta_class.name}"


def model_fingerprint(resource: ModelResource) -> List[str]:
    """A sorted, uuid-free structural summary of every element and slot."""
    from repro.metamodel.instances import MList
    from repro.metamodel.kernel import MetaReference

    lines: List[str] = []
    for obj in resource.all_contents():
        path = _element_path(obj)
        for feature in obj.meta_class.all_features().values():
            value = obj._slots.get(feature.name)
            # empty collections are indistinguishable from unset slots (a
            # lazily-materialized empty MList is not a model difference)
            if value is None or (isinstance(value, MList) and not value):
                continue

            if isinstance(feature, MetaReference):
                targets = list(value) if isinstance(value, MList) else [value]
                if feature.containment:
                    rendered = f"#{len(targets)}"
                else:
                    rendered = ",".join(sorted(_element_path(t) for t in targets))
            else:
                items = list(value) if isinstance(value, MList) else [value]
                rendered = ",".join(repr(i) for i in items)
            lines.append(f"{path}|{feature.name}={rendered}")
    return sorted(lines)


def replay(
    package: ComponentPackage,
    registry=None,
    services=None,
    verify: bool = True,
):
    """Re-run a shipped component's refinement steps; returns the lifecycle.

    With ``verify`` (default) the replayed model's structural fingerprint
    must equal the shipped final model's; divergence (e.g. the receiver's
    registry has a different transformation under the same concern name)
    raises :class:`ShippingError`.
    """
    from repro.core.lifecycle import MdaLifecycle

    resource = parse_xmi(package.initial_model_xmi, UML.package)
    lifecycle = MdaLifecycle(resource, registry=registry, services=services)
    for step in package.steps:
        lifecycle.apply_concern(step.concern, **step.parameters)
    if verify:
        expected = model_fingerprint(parse_xmi(package.final_model_xmi, UML.package))
        actual = model_fingerprint(lifecycle.repository.resource)
        if expected != actual:
            missing = [line for line in expected if line not in set(actual)]
            extra = [line for line in actual if line not in set(expected)]
            raise ShippingError(
                "replayed model diverges from the shipped final model "
                f"({len(missing)} line(s) missing, {len(extra)} extra); "
                f"first differences: {missing[:2] + extra[:2]}"
            )
    return lifecycle
