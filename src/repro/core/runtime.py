"""The wired middleware services bundle handed to concrete aspects.

Concrete aspects are pure behaviour; everything stateful they touch — the
ORB, the transaction manager, the access controller — lives here, so one
application (one lifecycle run) has exactly one consistent set of
middleware services, all sharing one simulation clock and fault injector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aop.weaver import Weaver
from repro.middleware.bus import MessageBus
from repro.middleware.clock import SimClock
from repro.middleware.faults import FaultInjector
from repro.middleware.locks import LockManager
from repro.middleware.naming import NamingService
from repro.middleware.rpc import Orb
from repro.middleware.security import (
    AccessController,
    Acl,
    AuditLog,
    AuthenticationService,
    CredentialStore,
)
from repro.middleware.txn import TransactionManager


@dataclass
class MiddlewareServices:
    """Everything a concrete aspect may need at run time."""

    clock: SimClock
    faults: FaultInjector
    bus: MessageBus
    naming: NamingService
    orb: Orb
    locks: LockManager
    transactions: TransactionManager
    credentials: CredentialStore
    auth: AuthenticationService
    acl: Acl
    access: AccessController
    audit: AuditLog
    weaver: Weaver

    @classmethod
    def create(
        cls,
        seed: int = 0,
        latency_ms: float = 0.5,
        credential_ttl_ms: float = 60_000.0,
    ) -> "MiddlewareServices":
        """Build a fully wired, mutually consistent service set."""
        clock = SimClock()
        faults = FaultInjector(seed)
        bus = MessageBus(clock, faults, latency_ms)
        naming = NamingService()
        orb = Orb(bus, naming)
        locks = LockManager()
        transactions = TransactionManager(clock, faults, locks)
        credentials = CredentialStore()
        auth = AuthenticationService(credentials, clock, credential_ttl_ms)
        acl = Acl()
        audit = AuditLog()
        access = AccessController(auth, acl, audit)
        weaver = Weaver()
        return cls(
            clock=clock,
            faults=faults,
            bus=bus,
            naming=naming,
            orb=orb,
            locks=locks,
            transactions=transactions,
            credentials=credentials,
            auth=auth,
            acl=acl,
            access=access,
            audit=audit,
            weaver=weaver,
        )
