"""Aspect precedence from transformation application order (Fig. 2, §2).

*"The order in which specialized/concrete aspects will be applied at code
level (their precedence) is dictated by the order in which the
specialized/concrete model transformations were applied at model level."*

The :class:`AspectDeploymentPlan` accumulates concrete aspects in exactly
the order their transformations were applied and deploys them to a weaver
with ranks equal to their positions.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.errors import WeavingError
from repro.aop.weaver import Weaver
from repro.core.aspect import ConcreteAspect


class AspectDeploymentPlan:
    """Ordered list of concrete aspects awaiting (or after) deployment."""

    def __init__(self):
        self._aspects: List[ConcreteAspect] = []
        self._deployed = False

    def add(self, ca: ConcreteAspect) -> int:
        """Queue a concrete aspect; returns its precedence rank."""
        if self._deployed:
            raise WeavingError("deployment plan already executed")
        self._aspects.append(ca)
        return len(self._aspects) - 1

    @property
    def aspects(self) -> List[ConcreteAspect]:
        return list(self._aspects)

    def order(self) -> List[str]:
        return [ca.name for ca in self._aspects]

    def deploy(
        self,
        weaver: Weaver,
        services,
        classes: Optional[Iterable[type]] = None,
    ) -> List[str]:
        """Weave ``classes`` and deploy every queued aspect in plan order.

        Returns the deployed aspect names, highest precedence first.
        """
        for cls in classes or ():
            weaver.weave_class(cls)
        for rank, ca in enumerate(self._aspects):
            aspect = ca.build(services)
            weaver.deploy(aspect, rank)
            ca.rank = rank
        self._deployed = True
        return self.order()

    def __len__(self):
        return len(self._aspects)
