"""Concerns and concern spaces (viewpoints).

The paper: a model seen "from viewpoint *i*" exposes the *concern space
i* — the model elements involved in addressing concern *i*.  A
:class:`Concern` carries an optional OCL viewpoint query computing that
space; the query may reference the concern's parameter names, so the same
viewpoint specializes with ``Si`` just like the transformation does.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import TransformationError
from repro.metamodel.instances import MObject, ModelResource
from repro.metamodel.kernel import MetaClass
from repro.ocl import OclContext, evaluate


class Concern:
    """A separated area of interest (distribution, transactions, ...)."""

    def __init__(self, name: str, description: str = "", viewpoint: Optional[str] = None):
        self.name = name
        self.description = description
        #: OCL expression yielding the concern-space elements; may use
        #: parameter names as free variables.
        self.viewpoint = viewpoint

    def concern_space(
        self,
        resource: ModelResource,
        types: Dict[str, MetaClass],
        parameters: Optional[Dict[str, object]] = None,
    ) -> "ConcernSpace":
        """Evaluate the viewpoint query on ``resource``."""
        if self.viewpoint is None:
            return ConcernSpace(self, [])
        context = OclContext(
            resource=resource, types=types, variables=dict(parameters or {})
        )
        result = evaluate(self.viewpoint, context)
        if not isinstance(result, list):
            raise TransformationError(
                f"viewpoint of concern {self.name!r} must yield a collection, "
                f"got {result!r}"
            )
        elements = [e for e in result if isinstance(e, MObject)]
        return ConcernSpace(self, elements)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Concern {self.name}>"


class ConcernSpace:
    """The model elements seen from one concern's viewpoint."""

    def __init__(self, concern: Concern, elements: List[MObject]):
        self.concern = concern
        self.elements = list(elements)

    def __iter__(self):
        return iter(self.elements)

    def __len__(self):
        return len(self.elements)

    def __contains__(self, element: MObject) -> bool:
        return any(e is element for e in self.elements)

    def names(self) -> List[str]:
        return [
            e.get("name")
            for e in self.elements
            if e.meta_class.has_feature("name") and e.is_set("name")
        ]
