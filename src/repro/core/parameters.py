"""Parameter signatures and parameter sets — the paper's ``Si = Set(Pik)``.

A :class:`ParameterSignature` declares the parameters ``Pik`` a generic
artifact (transformation *and* its associated aspect) exposes along one
concern dimension; a :class:`ParameterSet` is a validated binding of those
parameters for one application.  The same :class:`ParameterSet` instance
specializes both the GMT and the GA — that identity is what the paper
proposes to break the semantic coupling problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ParameterError


@dataclass(frozen=True)
class Parameter:
    """Declaration of one ``Pik``."""

    name: str
    type: type = object
    required: bool = True
    default: object = None
    many: bool = False           #: value is a list of ``type``
    choices: Optional[Tuple] = None
    description: str = ""
    validator: Optional[Callable[[object], bool]] = None

    def check(self, value):
        """Validate and normalize one binding for this parameter."""
        if self.many:
            if not isinstance(value, (list, tuple)):
                raise ParameterError(
                    f"parameter {self.name!r} expects a list of {self.type.__name__}"
                )
            return [self._check_scalar(item) for item in value]
        return self._check_scalar(value)

    def _check_scalar(self, value):
        if self.type is not object and not isinstance(value, self.type):
            raise ParameterError(
                f"parameter {self.name!r} expects {self.type.__name__}, "
                f"got {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise ParameterError(
                f"parameter {self.name!r} must be one of {self.choices}, got {value!r}"
            )
        if self.validator is not None and not self.validator(value):
            raise ParameterError(f"parameter {self.name!r}: {value!r} rejected by validator")
        return value


class ParameterSignature:
    """Ordered declaration of the parameters of one generic artifact."""

    def __init__(self, parameters: Optional[List[Parameter]] = None):
        self._parameters: Dict[str, Parameter] = {}
        for parameter in parameters or []:
            self.add(parameter)

    def add(self, parameter: Parameter) -> Parameter:
        if parameter.name in self._parameters:
            raise ParameterError(f"duplicate parameter {parameter.name!r}")
        self._parameters[parameter.name] = parameter
        return parameter

    def declare(self, name: str, **kwargs) -> Parameter:
        return self.add(Parameter(name, **kwargs))

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters.values())

    def __len__(self):
        return len(self._parameters)

    def __contains__(self, name: str) -> bool:
        return name in self._parameters

    def names(self) -> List[str]:
        return list(self._parameters)

    def bind(self, **values) -> "ParameterSet":
        """Validate ``values`` against this signature, filling defaults."""
        unknown = set(values) - set(self._parameters)
        if unknown:
            raise ParameterError(
                f"unknown parameter(s) {sorted(unknown)}; "
                f"signature declares {self.names()}"
            )
        bound: Dict[str, object] = {}
        for parameter in self._parameters.values():
            if parameter.name in values:
                bound[parameter.name] = parameter.check(values[parameter.name])
            elif parameter.required and parameter.default is None:
                raise ParameterError(f"missing required parameter {parameter.name!r}")
            else:
                default = parameter.default
                bound[parameter.name] = list(default) if parameter.many and default else default
                if parameter.many and bound[parameter.name] is None:
                    bound[parameter.name] = []
        return ParameterSet(self, bound)


class ParameterSet:
    """``Si``: an immutable, validated binding of a signature's parameters."""

    def __init__(self, signature: ParameterSignature, values: Dict[str, object]):
        self.signature = signature
        self._values = dict(values)

    def __getitem__(self, name: str):
        try:
            return self._values[name]
        except KeyError:
            raise ParameterError(f"no parameter {name!r} in this set") from None

    def get(self, name: str, default=None):
        return self._values.get(name, default)

    def as_dict(self) -> Dict[str, object]:
        return dict(self._values)

    def __iter__(self):
        return iter(self._values.items())

    def __eq__(self, other):
        if not isinstance(other, ParameterSet):
            return NotImplemented
        return self._values == other._values

    def __hash__(self):
        return hash(tuple(sorted((k, repr(v)) for k, v in self._values.items())))

    def render(self) -> str:
        """``<p11, p12, ...>`` suffix used in concrete artifact names."""
        parts = []
        for name, value in self._values.items():
            if isinstance(value, list):
                rendered = "[" + ",".join(str(v) for v in value) + "]"
            else:
                rendered = str(value)
            if len(rendered) > 24:
                rendered = rendered[:21] + "..."
            parts.append(f"{name}={rendered}")
        return "<" + ", ".join(parts) + ">"

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Si{self.render()}"
