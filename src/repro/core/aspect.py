"""Generic and concrete aspects (the GA → CA arrow of Fig. 1).

A :class:`GenericAspect` is the implementation-level twin of a generic
transformation.  Its *factory* builds a runtime
:class:`~repro.aop.aspect.Aspect` from a parameter dict and the middleware
services; its *factory reference* (``"module.path:callable"``) lets the
S9 aspect generator emit the concrete aspect as a standalone source
artifact with the parameters baked in.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SpecializationError
from repro.core.parameters import ParameterSet, ParameterSignature


class GenericAspect:
    """GA(Ci): parameterized cross-cutting behaviour for one concern."""

    def __init__(
        self,
        name: str,
        signature: ParameterSignature,
        factory: Callable,
        factory_ref: Optional[str] = None,
        description: str = "",
    ):
        self.name = name
        self.signature = signature
        self.factory = factory
        #: importable reference ``"package.module:callable"`` for codegen
        self.factory_ref = factory_ref
        self.description = description
        self._transformation = None

    @property
    def generic_transformation(self):
        return self._transformation

    def _set_transformation(self, transformation) -> None:
        if self._transformation is not None and self._transformation is not transformation:
            raise SpecializationError(
                f"aspect {self.name!r} already belongs to a transformation"
            )
        self._transformation = transformation
        if transformation.generic_aspect is not self:
            transformation.associate_aspect(self)

    def specialize(self, parameter_set: Optional[ParameterSet] = None, **values):
        """The ``<<specialization>>`` arrow on the aspect side of Fig. 1.

        Accepts the *same* :class:`ParameterSet` that specialized the
        transformation — sharing ``Si`` is the point — or fresh values
        bound against the shared signature.
        """
        if parameter_set is None:
            parameter_set = self.signature.bind(**values)
        elif parameter_set.signature is not self.signature:
            raise SpecializationError(
                f"parameter set was bound against a different signature than "
                f"aspect {self.name!r}'s (GMT and GA must share one signature)"
            )
        return ConcreteAspect(self, parameter_set)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<GA {self.name}>"


class ConcreteAspect:
    """CA(Ci) = GA(Ci) + ``Si``; buildable into a runtime aspect."""

    def __init__(self, generic: GenericAspect, parameter_set: ParameterSet):
        self.generic = generic
        self.parameter_set = parameter_set
        self._built = None
        #: deployment rank assigned by the precedence plan (None until deployed)
        self.rank: Optional[int] = None

    @property
    def name(self) -> str:
        return f"{self.generic.name}{self.parameter_set.render()}"

    @property
    def parameters(self) -> dict:
        return self.parameter_set.as_dict()

    def build(self, services):
        """Instantiate the runtime aspect (cached)."""
        if self._built is None:
            self._built = self.generic.factory(self.parameters, services)
            # keep the CA's fully-qualified name on the runtime artifact
            self._built.name = self.name
        return self._built

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<CA {self.name}>"
