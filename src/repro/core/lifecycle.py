"""The MDA lifecycle driver: refine, generate, weave — end to end.

This is the §2 process as an executable object:

1. the developer starts from a functional PIM in a repository;
2. for each concern, :meth:`MdaLifecycle.apply_concern` selects the
   registered generic transformation, specializes it with the
   application-specific parameters ``Si``, applies it through the engine
   (preconditions → rules → postconditions, demarcated and undoable), and
   *generates the concrete aspect from the same Si*;
3. :meth:`MdaLifecycle.build_application` runs the functional code
   generator on the refined model, then weaves the generated classes and
   deploys the concrete aspects **in transformation application order**
   (their precedence).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import WorkflowError
from repro.metamodel.instances import ModelResource
from repro.repository import ModelRepository
from repro.transform.engine import ApplicationResult, TransformationEngine
from repro.codegen.aspect_backend import generate_aspect_module
from repro.codegen.python_backend import compile_model
from repro.core.aspect import ConcreteAspect
from repro.core.aspect_generator import generate_concrete_aspect
from repro.core.precedence import AspectDeploymentPlan
from repro.core.registry import ConcernRegistry
from repro.core.runtime import MiddlewareServices
from repro.core.transformation import ConcreteTransformation


class MdaLifecycle:
    """Drives one application through concern-oriented refinement to code."""

    def __init__(
        self,
        resource: ModelResource,
        registry: Optional[ConcernRegistry] = None,
        services: Optional[MiddlewareServices] = None,
        workflow=None,
    ):
        if registry is None:
            from repro.core.registry import default_registry

            registry = default_registry()
        self.repository = ModelRepository(resource)
        self.engine = TransformationEngine(self.repository)
        self.registry = registry
        self.services = services or MiddlewareServices.create()
        self.workflow = workflow
        self.plan = AspectDeploymentPlan()
        self.applied: List[Tuple[ConcreteTransformation, ConcreteAspect]] = []
        self._module = None

    # -- refinement ------------------------------------------------------------

    @property
    def applied_concerns(self) -> List[str]:
        return [cmt.concern for cmt, _ in self.applied]

    def apply_concern(self, concern_name: str, **parameters) -> ApplicationResult:
        """Specialize and apply the concern's GMT; generate its CA.

        Returns the engine's application result.  The concrete aspect is
        queued on the deployment plan at the position corresponding to
        this application (precedence = application order).
        """
        if self.workflow is not None and not self.workflow.is_allowed(
            concern_name, self.applied_concerns
        ):
            raise WorkflowError(
                f"workflow does not allow concern {concern_name!r} after "
                f"{self.applied_concerns}"
            )
        if not self.repository.history.versions:
            self.repository.commit("initial PIM")
        gmt = self.registry.get(concern_name)
        cmt = gmt.specialize(**parameters)
        result = self.engine.apply(cmt)
        ca = generate_concrete_aspect(cmt)
        self.plan.add(ca)
        self.applied.append((cmt, ca))
        self.repository.commit(f"after {cmt.name}")
        return result

    def remaining_concerns(self) -> List[str]:
        """Registered concerns not applied yet (the paper's to-do list)."""
        done = set(self.applied_concerns)
        return [c for c in self.registry.concerns() if c not in done]

    # -- generation --------------------------------------------------------------

    def generate_functional_code(self, module_name: str = "generated_app"):
        """Run the functional code generator over the refined model."""
        model = self.repository.resource.roots[0]
        self._module = compile_model(model, module_name)
        return self._module

    def generate_aspect_sources(self) -> Dict[str, str]:
        """Emit every queued concrete aspect as a source artifact."""
        return {
            ca.name: generate_aspect_module(ca) for _, ca in self.applied
        }

    # -- weaving -------------------------------------------------------------------

    def application_classes(self) -> List[type]:
        """The classes defined by the generated functional module."""
        if self._module is None:
            self.generate_functional_code()
        import enum as _enum

        return [
            value
            for value in vars(self._module).values()
            if isinstance(value, type)
            and value.__module__ == self._module.__name__
            and not issubclass(value, _enum.Enum)
        ]

    def build_application(self, module_name: str = "generated_app"):
        """Generate the functional module, weave it, deploy the aspects.

        Returns the ready-to-use module: its classes are instrumented and
        every concrete aspect is live, in application order.
        """
        module = self.generate_functional_code(module_name)
        self.plan.deploy(
            self.services.weaver, self.services, self.application_classes()
        )
        return module

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> str:
        """Fig. 2 as text: Ti<Si> → Ai<Si> pairs in precedence order."""
        lines = ["transformation -> aspect (precedence = application order):"]
        for rank, (cmt, ca) in enumerate(self.applied):
            lines.append(f"  {rank}: {cmt.name}  ->  {ca.name}")
        lines.append(self.repository.demarcation.report())
        return "\n".join(lines)
