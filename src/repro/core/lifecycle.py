"""The MDA lifecycle driver: refine, generate, weave — end to end.

This is the §2 process as an executable object:

1. the developer starts from a functional PIM in a repository;
2. for each concern, :meth:`MdaLifecycle.apply_concern` selects the
   registered generic transformation, specializes it with the
   application-specific parameters ``Si``, applies it through the engine
   (preconditions → rules → postconditions, demarcated and undoable), and
   *generates the concrete aspect from the same Si*;
3. :meth:`MdaLifecycle.build_application` runs the functional code
   generator on the refined model, then weaves the generated classes and
   deploys the concrete aspects **in transformation application order**
   (their precedence).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import BatchExecutionError, WorkflowError
from repro.metamodel.instances import ModelResource
from repro.pipeline import ConfigurationPlan, PipelineExecutor, PipelineResult, Scheduler
from repro.repository import ModelRepository
from repro.transform.engine import ApplicationResult, TransformationEngine
from repro.codegen.aspect_backend import generate_aspect_module
from repro.codegen.python_backend import compile_model
from repro.core.aspect import ConcreteAspect
from repro.core.aspect_generator import generate_concrete_aspect
from repro.core.precedence import AspectDeploymentPlan
from repro.core.registry import ConcernRegistry
from repro.core.runtime import MiddlewareServices
from repro.core.transformation import ConcreteTransformation


class MdaLifecycle:
    """Drives one application through concern-oriented refinement to code."""

    def __init__(
        self,
        resource: ModelResource,
        registry: Optional[ConcernRegistry] = None,
        services: Optional[MiddlewareServices] = None,
        workflow=None,
    ):
        if registry is None:
            from repro.core.registry import default_registry

            registry = default_registry()
        self.repository = ModelRepository(resource)
        self.engine = TransformationEngine(self.repository)
        self.registry = registry
        self.services = services or MiddlewareServices.create()
        self.workflow = workflow
        self.plan = AspectDeploymentPlan()
        self.applied: List[Tuple[ConcreteTransformation, ConcreteAspect]] = []
        #: stats of the most recent pipeline run (None before the first)
        self.last_pipeline_stats = None
        self._module = None

    # -- refinement ------------------------------------------------------------

    @property
    def applied_concerns(self) -> List[str]:
        return [cmt.concern for cmt, _ in self.applied]

    def apply_concern(self, concern_name: str, **parameters) -> ApplicationResult:
        """Specialize and apply the concern's GMT; generate its CA.

        Single-concern convenience over :meth:`apply_plan`: a one-selection
        plan runs through the pipeline (one batch, one savepoint).  The
        concrete aspect is queued on the deployment plan at the position
        corresponding to this application (precedence = application order).
        """
        plan = ConfigurationPlan().select(concern_name, **parameters)
        result = self.apply_plan(plan)
        return result.applications[-1]

    def apply_plan(self, plan: ConfigurationPlan) -> PipelineResult:
        """Drive a multi-concern configuration through the pipeline.

        Plan → schedule (precedence DAG, batched) → execute (one
        demarcated savepoint per batch) → concrete aspects queued in
        schedule order.  Workflow prerequisites already satisfied by this
        lifecycle's application history impose no edges.
        """
        history = self.applied_concerns
        if self.workflow is not None:
            for concern_name in plan.concerns:
                if not self.workflow.is_allowed(
                    concern_name, history + [c for c in plan.concerns if c != concern_name]
                ):
                    raise WorkflowError(
                        f"workflow does not allow concern {concern_name!r} after "
                        f"{history}"
                    )
        elif set(plan.concerns) & set(history):
            duplicate = sorted(set(plan.concerns) & set(history))
            raise WorkflowError(
                f"concern(s) {duplicate} were already applied to this lifecycle"
            )
        steps = plan.bind(self.registry, satisfied=history)
        schedule = Scheduler(workflow=self.workflow, satisfied=history).schedule(
            steps
        )
        if not self.repository.history.versions:
            self.repository.commit("initial PIM")
        executor = PipelineExecutor(self.repository, engine=self.engine)
        try:
            result = executor.run(schedule)
        except BatchExecutionError as exc:
            # batches committed before the failure are permanently in the
            # repository — mirror them in the lifecycle state so retries
            # and build_application stay consistent with the model
            if exc.partial_result is not None:
                self._queue_aspects(schedule, exc.partial_result)
            raise
        self._queue_aspects(schedule, result)
        self.last_pipeline_stats = result.stats
        return result

    def _queue_aspects(self, schedule, result: PipelineResult) -> None:
        """Queue the CA of every step the pipeline actually applied."""
        applied_names = {r.transformation for r in result.applications}
        for step in schedule.order():
            if step.name not in applied_names:
                continue
            ca = generate_concrete_aspect(step.concrete)
            self.plan.add(ca)
            self.applied.append((step.concrete, ca))

    def remaining_concerns(self) -> List[str]:
        """Registered concerns not applied yet (the paper's to-do list)."""
        done = set(self.applied_concerns)
        return [c for c in self.registry.concerns() if c not in done]

    # -- generation --------------------------------------------------------------

    def generate_functional_code(self, module_name: str = "generated_app"):
        """Run the functional code generator over the refined model."""
        model = self.repository.resource.roots[0]
        self._module = compile_model(model, module_name)
        return self._module

    def generate_aspect_sources(self) -> Dict[str, str]:
        """Emit every queued concrete aspect as a source artifact."""
        return {
            ca.name: generate_aspect_module(ca) for _, ca in self.applied
        }

    # -- weaving -------------------------------------------------------------------

    def application_classes(self) -> List[type]:
        """The classes defined by the generated functional module."""
        if self._module is None:
            self.generate_functional_code()
        import enum as _enum

        return [
            value
            for value in vars(self._module).values()
            if isinstance(value, type)
            and value.__module__ == self._module.__name__
            and not issubclass(value, _enum.Enum)
        ]

    def build_application(self, module_name: str = "generated_app"):
        """Generate the functional module, weave it, deploy the aspects.

        Returns the ready-to-use module: its classes are instrumented and
        every concrete aspect is live, in application order.
        """
        module = self.generate_functional_code(module_name)
        self.plan.deploy(
            self.services.weaver, self.services, self.application_classes()
        )
        return module

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> str:
        """Fig. 2 as text: Ti<Si> → Ai<Si> pairs in precedence order."""
        lines = ["transformation -> aspect (precedence = application order):"]
        for rank, (cmt, ca) in enumerate(self.applied):
            lines.append(f"  {rank}: {cmt.name}  ->  {ca.name}")
        lines.append(self.repository.demarcation.report())
        return "\n".join(lines)
