"""Registry of generic transformations keyed by concern name.

Tool infrastructure glue: the workflow engine (S7) and lifecycle driver
(S12) look generic transformations up here, and the concern library (S11)
registers its GMT/GA pairs on import.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import TransformationError
from repro.core.transformation import GenericTransformation


class ConcernRegistry:
    """Concern name → generic transformation (with its associated aspect)."""

    def __init__(self):
        self._by_concern: Dict[str, GenericTransformation] = {}

    def register(self, gmt: GenericTransformation) -> GenericTransformation:
        concern_name = gmt.concern.name
        if concern_name in self._by_concern:
            raise TransformationError(
                f"concern {concern_name!r} already has a registered transformation"
            )
        self._by_concern[concern_name] = gmt
        return gmt

    def get(self, concern_name: str) -> GenericTransformation:
        try:
            return self._by_concern[concern_name]
        except KeyError:
            raise TransformationError(
                f"no generic transformation registered for concern "
                f"{concern_name!r}; known: {sorted(self._by_concern)}"
            ) from None

    def concerns(self) -> List[str]:
        return list(self._by_concern)

    def __contains__(self, concern_name: str) -> bool:
        return concern_name in self._by_concern

    def __len__(self):
        return len(self._by_concern)


def default_registry() -> ConcernRegistry:
    """A registry pre-populated with the built-in concern library (S11)."""
    from repro.concerns import register_builtin_concerns

    registry = ConcernRegistry()
    register_builtin_concerns(registry)
    return registry
