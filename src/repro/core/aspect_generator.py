"""The aspect generator: CMT → CA with the identical parameter set.

The paper's central mechanism: *"the set of parameters Si, used to
specialize the generic model transformation, could be used to specialize
the corresponding generic aspect as well, thus overcoming the problem of
semantic coupling"*.  :func:`generate_concrete_aspect` enforces that
identity — the concrete aspect is derived from the applied concrete
transformation, never configured independently.
"""

from __future__ import annotations

from repro.errors import SpecializationError
from repro.core.aspect import ConcreteAspect
from repro.core.transformation import ConcreteTransformation


def generate_concrete_aspect(cmt: ConcreteTransformation) -> ConcreteAspect:
    """Derive the concrete aspect of an applied concrete transformation.

    Guarantees ``ca.parameter_set is cmt.parameter_set`` — the exact same
    ``Si`` object specializes both sides of Fig. 1.
    """
    ca = cmt.derive_aspect()
    if ca.parameter_set is not cmt.parameter_set:
        raise SpecializationError(
            f"aspect generation for {cmt.name!r} lost the shared parameter set"
        )
    return ca
