"""Generic and concrete model transformations (the GMT → CMT arrow of Fig. 1).

A :class:`GenericTransformation` packages, along one concern dimension:

* a parameter signature (the ``Pik``),
* OCL pre/postconditions written against the generic parameter names
  (specialized by binding ``Si`` at evaluation time),
* an ordered rule sequence refining the model,
* the 1–1 associated :class:`~repro.core.aspect.GenericAspect`.

``specialize(**Si)`` produces a :class:`ConcreteTransformation` that the
S6 engine can apply and from which the S12 aspect generator derives the
concrete aspect *with the same parameter set*.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SpecializationError
from repro.core.concern import Concern
from repro.core.parameters import ParameterSet, ParameterSignature
from repro.transform.conditions import ConditionSet
from repro.transform.mappings import MappingKind
from repro.transform.rules import RuleSequence


class GenericTransformation:
    """GMT(Ci): a parameterized, concern-oriented model refinement."""

    def __init__(
        self,
        name: str,
        concern: Concern,
        signature: Optional[ParameterSignature] = None,
        description: str = "",
        mapping_kind: MappingKind = MappingKind.PIM_TO_PIM,
    ):
        self.name = name
        self.concern = concern
        self.signature = signature if signature is not None else ParameterSignature()
        self.description = description
        self.mapping_kind = mapping_kind
        self.preconditions = ConditionSet()
        self.postconditions = ConditionSet()
        self.rules = RuleSequence()
        self._generic_aspect = None

    # -- authoring DSL ---------------------------------------------------------

    def parameter(self, name: str, **kwargs):
        """Declare one ``Pik``; chainable."""
        self.signature.declare(name, **kwargs)
        return self

    def precondition(self, name: str, expression: str, description: str = ""):
        self.preconditions.add(name, expression, description)
        return self

    def postcondition(self, name: str, expression: str, description: str = ""):
        self.postconditions.add(name, expression, description)
        return self

    def rule(self, name: str, description: str = "") -> Callable:
        """Decorator registering a rule body."""
        return self.rules.rule(name, description)

    # -- aspect association (1—1 in Fig. 1) ---------------------------------------

    @property
    def generic_aspect(self):
        return self._generic_aspect

    def associate_aspect(self, aspect) -> None:
        """Wire the 1–1 GMT↔GA association; both directions are set."""
        if self._generic_aspect is not None and self._generic_aspect is not aspect:
            raise SpecializationError(
                f"transformation {self.name!r} already has an associated aspect"
            )
        self._generic_aspect = aspect
        if aspect.generic_transformation is not self:
            aspect._set_transformation(self)

    # -- specialization --------------------------------------------------------------

    def specialize(self, parameter_set: Optional[ParameterSet] = None, **values):
        """The ``<<specialization>>`` arrow: bind ``Si``, return the CMT."""
        if parameter_set is not None and values:
            raise SpecializationError(
                "pass either a ParameterSet or keyword values, not both"
            )
        if parameter_set is None:
            parameter_set = self.signature.bind(**values)
        elif parameter_set.signature is not self.signature:
            raise SpecializationError(
                f"parameter set was bound against a different signature "
                f"than {self.name!r}'s"
            )
        return ConcreteTransformation(self, parameter_set)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<GMT {self.name} ({self.concern.name})>"


class ConcreteTransformation:
    """CMT(Ci) = GMT(Ci) + ``Si``; the unit the engine applies.

    Satisfies the engine's transformation-spec protocol by delegation.
    """

    def __init__(self, generic: GenericTransformation, parameter_set: ParameterSet):
        self.generic = generic
        self.parameter_set = parameter_set

    @property
    def name(self) -> str:
        return f"{self.generic.name}{self.parameter_set.render()}"

    @property
    def concern(self) -> str:
        return self.generic.concern.name

    @property
    def parameters(self) -> dict:
        return self.parameter_set.as_dict()

    @property
    def preconditions(self) -> ConditionSet:
        return self.generic.preconditions

    @property
    def postconditions(self) -> ConditionSet:
        return self.generic.postconditions

    @property
    def rules(self) -> RuleSequence:
        return self.generic.rules

    @property
    def mapping_kind(self) -> MappingKind:
        return self.generic.mapping_kind

    def derive_aspect(self):
        """Specialize the associated GA **with this CMT's own Si** (Fig. 1)."""
        aspect = self.generic.generic_aspect
        if aspect is None:
            raise SpecializationError(
                f"transformation {self.generic.name!r} has no associated generic aspect"
            )
        return aspect.specialize(self.parameter_set)

    def concern_space(self, resource, types):
        """The model elements this CMT's concern sees (viewpoint + Si)."""
        return self.generic.concern.concern_space(
            resource, types, self.parameters
        )

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<CMT {self.name}>"
