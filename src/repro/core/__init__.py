"""S12 — The paper's contribution: generic concern-oriented model
transformations meeting AOP.

Fig. 1 of the paper, as code:

* :class:`~repro.core.concern.Concern` — a separated area of interest with
  a *viewpoint* query selecting its concern space in a model;
* :class:`~repro.core.parameters.ParameterSignature` /
  :class:`~repro.core.parameters.ParameterSet` — ``Si = Set(Pik)``, the
  application-specific configuration;
* :class:`~repro.core.transformation.GenericTransformation` (GMT) —
  parameterized model refinement with OCL pre/postconditions;
  ``gmt.specialize(**Si)`` is the ``<<specialization>>`` arrow yielding a
  :class:`~repro.core.transformation.ConcreteTransformation` (CMT);
* :class:`~repro.core.aspect.GenericAspect` (GA) — the 1–1 associated
  implementation-level artifact; specialized **by the same Si** into a
  :class:`~repro.core.aspect.ConcreteAspect` (CA);
* :func:`~repro.core.aspect_generator.generate_concrete_aspect` — the
  aspect generator deriving the CA from an applied CMT;
* :class:`~repro.core.precedence.AspectDeploymentPlan` — aspect precedence
  dictated by the model-level application order;
* :class:`~repro.core.lifecycle.MdaLifecycle` — the end-to-end driver:
  refine the PIM concern by concern, generate functional code, generate and
  weave the concrete aspects.
"""

from repro.core.concern import Concern, ConcernSpace
from repro.core.parameters import Parameter, ParameterSet, ParameterSignature
from repro.core.transformation import ConcreteTransformation, GenericTransformation
from repro.core.aspect import ConcreteAspect, GenericAspect
from repro.core.aspect_generator import generate_concrete_aspect
from repro.core.precedence import AspectDeploymentPlan
from repro.core.registry import ConcernRegistry
from repro.core.runtime import MiddlewareServices
from repro.core.lifecycle import MdaLifecycle
from repro.core.shipping import (
    ComponentPackage,
    ShippedStep,
    ShippingError,
    model_fingerprint,
    replay,
    ship,
)

__all__ = [
    "Concern",
    "ConcernSpace",
    "Parameter",
    "ParameterSignature",
    "ParameterSet",
    "GenericTransformation",
    "ConcreteTransformation",
    "GenericAspect",
    "ConcreteAspect",
    "generate_concrete_aspect",
    "AspectDeploymentPlan",
    "ConcernRegistry",
    "MiddlewareServices",
    "MdaLifecycle",
    "ComponentPackage",
    "ShippedStep",
    "ShippingError",
    "ship",
    "replay",
    "model_fingerprint",
]
