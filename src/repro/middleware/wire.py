"""Sans-IO wire protocol: the frame codec socket transports speak.

This module is the byte half of the invocation path's sans-IO split.
The envelope layer (:mod:`repro.middleware.envelope` /
:mod:`repro.middleware.bus`) turns calls into plain wire *dicts*
(``Envelope.to_wire`` / ``Request.to_wire`` / ``Response.to_wire``);
this module turns those dicts into length-prefixed binary **frames**
and back — and knows nothing about sockets, threads, or who is on the
other end.  IO owners (:mod:`repro.middleware.sockets`) feed received
bytes in and write returned bytes out; a future asyncio transport
drives the very same state machine.

Frame layout (everything big-endian)::

    +----+----+------+------+--------------+=============+
    | 'R'| 'W'| ver  | kind |  length u32  |   payload   |
    +----+----+------+------+--------------+=============+
      magic (2)  1      1         4          `length` bytes

The payload is one value in the codec below — a tagged, length-prefixed
binary encoding closed over exactly the bus's marshal contract
(``None``/``bool``/``int``/``float``/``str``/``bytes``, lists, tuples,
string-keyed dicts, :class:`~repro.middleware.bus.ObjectRefData`), so
"marshallable" and "frame-encodable" are the same predicate.  Garbage
magic, unknown versions or kinds, oversized frames, over-deep nesting
(:data:`MAX_DEPTH`), truncated or trailing payload bytes all raise
:class:`~repro.errors.ProtocolError`.

:class:`FrameDecoder` is an incremental state machine: bytes arrive in
arbitrary splits (half a header, three frames and a tail, ...) and
complete frames come out.  :class:`WireSession` layers the
handshake/conversation rules on top: HELLO/HELLO-OK version agreement
first, then request/response/ack/fault frames correlated by envelope
ids.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple

import repro.errors as errors_module
from repro.errors import (
    MiddlewareError,
    NodeDownError,
    ProtocolError,
    RemoteInvocationError,
    ReproError,
)
from repro.middleware.bus import ObjectRefData, Response
from repro.middleware.envelope import Envelope, is_retryable

MAGIC = b"RW"
VERSION = 1

#: refuse frames larger than this (a garbage length prefix must not make
#: the decoder buffer gigabytes before noticing)
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

#: refuse values nested deeper than this — a hostile frame packing one
#: container per ~5 bytes could otherwise blow the interpreter's
#: recursion limit and surface a raw RecursionError instead of the
#: ProtocolError that poisons the decoder and drops the connection
MAX_DEPTH = 100

_HEADER = struct.Struct(">2sBBI")

# -- frame kinds -------------------------------------------------------------

HELLO = 1  #: client greeting: {"version", "node"}
HELLO_OK = 2  #: server accept: {"version", "node"}
REQUEST = 3  #: one routed call: Envelope.to_wire()
RESPONSE = 4  #: its reply: {"correlation_id", "response"}
ONEWAY_ACK = 5  #: receipt of a oneway envelope: {"correlation_id"}
FAULT = 6  #: delivery failed before a Response existed: {"correlation_id", "fault"}
CONTROL = 7  #: management conversation (deploy, state, shutdown): free-form dict
CONTROL_OK = 8  #: management reply

_KINDS = frozenset(
    (HELLO, HELLO_OK, REQUEST, RESPONSE, ONEWAY_ACK, FAULT, CONTROL, CONTROL_OK)
)

KIND_NAMES = {
    HELLO: "hello",
    HELLO_OK: "hello_ok",
    REQUEST: "request",
    RESPONSE: "response",
    ONEWAY_ACK: "oneway_ack",
    FAULT: "fault",
    CONTROL: "control",
    CONTROL_OK: "control_ok",
}


# ---------------------------------------------------------------------------
# value codec (the marshal contract, in binary)
# ---------------------------------------------------------------------------

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


def encode_value(value: Any) -> bytes:
    """Encode one marshalled value into its binary payload form."""
    out: List[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def _encode_into(value: Any, out: List[bytes], depth: int = 0) -> None:
    if depth > MAX_DEPTH:
        raise ProtocolError(
            f"wire value nests deeper than {MAX_DEPTH} levels"
        )
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int):
        # decimal text keeps arbitrary-precision ints exact
        text = b"%d" % value
        out.append(b"i")
        out.append(_U32.pack(len(text)))
        out.append(text)
    elif isinstance(value, float):
        out.append(b"f")
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, bytes):
        out.append(b"b")
        out.append(_U32.pack(len(value)))
        out.append(value)
    elif isinstance(value, list):
        out.append(b"l")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(item, out, depth + 1)
    elif isinstance(value, tuple):
        out.append(b"t")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(b"d")
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise ProtocolError(
                    f"wire dict keys must be strings, got {key!r}"
                )
            data = key.encode("utf-8")
            out.append(_U32.pack(len(data)))
            out.append(data)
            _encode_into(item, out, depth + 1)
    elif isinstance(value, ObjectRefData):
        out.append(b"r")
        for text in (value.object_id, value.type_name):
            data = text.encode("utf-8")
            out.append(_U32.pack(len(data)))
            out.append(data)
    else:
        raise ProtocolError(
            f"value of type {type(value).__name__} is outside the wire contract"
        )


def decode_value(payload: bytes) -> Any:
    """Decode one binary payload; trailing bytes are a protocol error."""
    value, offset = _decode_from(memoryview(payload), 0)
    if offset != len(payload):
        raise ProtocolError(
            f"{len(payload) - offset} trailing byte(s) after wire value"
        )
    return value


def _take(payload: memoryview, offset: int, count: int) -> Tuple[memoryview, int]:
    end = offset + count
    if end > len(payload):
        raise ProtocolError("truncated wire value")
    return payload[offset:end], end


def _decode_from(
    payload: memoryview, offset: int, depth: int = 0
) -> Tuple[Any, int]:
    if depth > MAX_DEPTH:
        raise ProtocolError(
            f"wire value nests deeper than {MAX_DEPTH} levels"
        )
    tag_view, offset = _take(payload, offset, 1)
    tag = tag_view.tobytes()
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"i":
        raw, offset = _take(payload, offset, 4)
        (size,) = _U32.unpack(raw)
        text, offset = _take(payload, offset, size)
        try:
            return int(text.tobytes()), offset
        except ValueError as exc:
            raise ProtocolError(f"malformed integer payload: {exc}") from None
    if tag == b"f":
        raw, offset = _take(payload, offset, 8)
        return _F64.unpack(raw)[0], offset
    if tag in (b"s", b"b"):
        raw, offset = _take(payload, offset, 4)
        (size,) = _U32.unpack(raw)
        data, offset = _take(payload, offset, size)
        if tag == b"b":
            return data.tobytes(), offset
        try:
            return data.tobytes().decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"malformed string payload: {exc}") from None
    if tag in (b"l", b"t"):
        raw, offset = _take(payload, offset, 4)
        (count,) = _U32.unpack(raw)
        items = []
        for _ in range(count):
            item, offset = _decode_from(payload, offset, depth + 1)
            items.append(item)
        return (tuple(items) if tag == b"t" else items), offset
    if tag == b"d":
        raw, offset = _take(payload, offset, 4)
        (count,) = _U32.unpack(raw)
        mapping: Dict[str, Any] = {}
        for _ in range(count):
            raw, offset = _take(payload, offset, 4)
            (size,) = _U32.unpack(raw)
            key_data, offset = _take(payload, offset, size)
            try:
                key = key_data.tobytes().decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError(f"malformed dict key: {exc}") from None
            mapping[key], offset = _decode_from(payload, offset, depth + 1)
        return mapping, offset
    if tag == b"r":
        parts = []
        for _ in range(2):
            raw, offset = _take(payload, offset, 4)
            (size,) = _U32.unpack(raw)
            data, offset = _take(payload, offset, size)
            try:
                parts.append(data.tobytes().decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise ProtocolError(f"malformed reference: {exc}") from None
        return ObjectRefData(parts[0], parts[1]), offset
    raise ProtocolError(f"unknown wire value tag {tag!r}")


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def encode_frame(kind: int, payload_value: Any) -> bytes:
    """One complete frame: header + encoded payload."""
    if kind not in _KINDS:
        raise ProtocolError(f"unknown frame kind {kind!r}")
    payload = encode_value(payload_value)
    return _HEADER.pack(MAGIC, VERSION, kind, len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser: feed bytes in, complete frames out.

    Pure state machine — it owns a buffer and nothing else.  Bytes may
    arrive in any split (mid-header, several frames at once, a frame
    spread over many reads); :meth:`frames` yields every frame that has
    fully arrived and keeps the remainder buffered.  A protocol
    violation (bad magic, unknown version/kind, oversized length,
    undecodable payload) raises :class:`~repro.errors.ProtocolError`
    and poisons the decoder — the connection that fed it is beyond
    resynchronization and must be dropped by its owner.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> None:
        if self._poisoned:
            raise ProtocolError("decoder is poisoned by an earlier violation")
        self._buffer.extend(data)

    def pending(self) -> int:
        """Buffered bytes not yet consumed by a complete frame."""
        return len(self._buffer)

    def frames(self) -> Iterator[Tuple[int, Any]]:
        """Yield every ``(kind, payload)`` fully buffered so far."""
        while True:
            frame = self._next_frame()
            if frame is None:
                return
            yield frame

    def _next_frame(self) -> Optional[Tuple[int, Any]]:
        if self._poisoned:
            raise ProtocolError("decoder is poisoned by an earlier violation")
        if len(self._buffer) < _HEADER.size:
            return None
        magic, version, kind, length = _HEADER.unpack_from(self._buffer)
        try:
            if magic != MAGIC:
                raise ProtocolError(
                    f"bad frame magic {bytes(magic)!r} (expected {MAGIC!r})"
                )
            if version != VERSION:
                raise ProtocolError(
                    f"unsupported wire version {version} (speaking {VERSION})"
                )
            if kind not in _KINDS:
                raise ProtocolError(f"unknown frame kind {kind}")
            if length > self.max_frame:
                raise ProtocolError(
                    f"frame of {length} bytes exceeds the "
                    f"{self.max_frame}-byte limit"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return None
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            return kind, decode_value(payload)
        except ProtocolError:
            self._poisoned = True
            raise


# ---------------------------------------------------------------------------
# faults on the wire
# ---------------------------------------------------------------------------


def encode_fault(exc: BaseException) -> Dict[str, Any]:
    """A delivery failure as a wire dict, retry semantics preserved.

    The *sender* computes :func:`~repro.middleware.envelope.is_retryable`
    — the side that actually knows whether the fault fired before any
    servant effect — so the retry decision crosses the wire instead of
    being degraded to "unknown, never retry" on arrival.
    """
    fault: Dict[str, Any] = {
        "error_type": type(exc).__name__,
        "message": str(exc),
        "retryable": is_retryable(exc),
    }
    if isinstance(exc, NodeDownError):
        fault["node"] = exc.node
        fault["pre_effect"] = exc.pre_effect
    return fault


def decode_fault(fault: Dict[str, Any]) -> Exception:
    """Rebuild a wire fault, honouring the sender's retry classification.

    A retryable fault comes back exactly as raised (a pre-effect
    :class:`NodeDownError` keeps its node and pre-effect flag, a bare
    :class:`MiddlewareError` stays bare) so the QoS retry budget and the
    failover element behave as if the hop had been in-process.  A
    non-retryable fault is rebuilt by type name and marked
    ``_remote_rebuilt`` — effects may exist on the peer, so re-delivery
    is off the table.
    """
    error_type = fault.get("error_type", "")
    message = fault.get("message", "")
    if error_type == "NodeDownError":
        return NodeDownError(
            message,
            node=fault.get("node", ""),
            pre_effect=bool(fault.get("pre_effect", False)),
        )
    if fault.get("retryable") and error_type == "MiddlewareError":
        return MiddlewareError(message)
    exc_type = getattr(errors_module, error_type, None)
    rebuilt: Exception
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        try:
            rebuilt = exc_type(message)
        except TypeError:
            rebuilt = RemoteInvocationError(
                f"remote raised {error_type}: {message}"
            )
    else:
        rebuilt = RemoteInvocationError(f"remote raised {error_type}: {message}")
    rebuilt._remote_rebuilt = True
    return rebuilt


# ---------------------------------------------------------------------------
# the per-connection conversation
# ---------------------------------------------------------------------------


class WireSession:
    """Sans-IO conversation state for one connection end.

    Owns a :class:`FrameDecoder` plus the handshake rule: a client opens
    with HELLO (:meth:`greeting`), a server answers HELLO-OK, and any
    conversation frame before the handshake completes is a protocol
    error.  Version agreement happens here — a peer speaking another
    protocol version is refused before any envelope is interpreted.

    The IO owner's loop is::

        session.feed(sock.recv(...))          # bytes in
        for kind, payload in session.events() # decoded conversation
        sock.sendall(session.take_outbound()) # bytes out (handshake replies)
    """

    def __init__(
        self,
        role: str,
        node: str = "",
        max_frame: int = DEFAULT_MAX_FRAME,
    ):
        if role not in ("client", "server"):
            raise ProtocolError(f"unknown session role {role!r}")
        self.role = role
        self.node = node
        self.peer: Optional[str] = None
        self.handshaken = False
        self._decoder = FrameDecoder(max_frame=max_frame)
        self._outbound = bytearray()
        self._events: List[Tuple[int, Any]] = []

    # -- byte side -----------------------------------------------------------

    def greeting(self) -> bytes:
        """The client's opening HELLO (server sessions never greet)."""
        if self.role != "client":
            raise ProtocolError("only client sessions greet")
        return encode_frame(HELLO, {"version": VERSION, "node": self.node})

    def feed(self, data: bytes) -> None:
        """Buffer received bytes and run the handshake state machine."""
        self._decoder.feed(data)
        for kind, payload in self._decoder.frames():
            self._handle(kind, payload)

    def take_outbound(self) -> bytes:
        """Bytes the session decided to send (handshake replies); may be empty."""
        data = bytes(self._outbound)
        self._outbound.clear()
        return data

    def events(self) -> List[Tuple[int, Any]]:
        """Conversation frames decoded since the last call."""
        events, self._events = self._events, []
        return events

    # -- handshake rules -----------------------------------------------------

    def _handle(self, kind: int, payload: Any) -> None:
        if kind == HELLO:
            if self.role != "server" or self.handshaken:
                raise ProtocolError("unexpected HELLO")
            if not isinstance(payload, dict) or payload.get("version") != VERSION:
                raise ProtocolError(
                    f"peer speaks wire version "
                    f"{payload.get('version') if isinstance(payload, dict) else payload!r}, "
                    f"not {VERSION}"
                )
            self.peer = str(payload.get("node", ""))
            self.handshaken = True
            self._outbound.extend(
                encode_frame(HELLO_OK, {"version": VERSION, "node": self.node})
            )
            return
        if kind == HELLO_OK:
            if self.role != "client" or self.handshaken:
                raise ProtocolError("unexpected HELLO-OK")
            if not isinstance(payload, dict) or payload.get("version") != VERSION:
                raise ProtocolError("handshake reply speaks another version")
            self.peer = str(payload.get("node", ""))
            self.handshaken = True
            return
        if not self.handshaken:
            raise ProtocolError(
                f"{KIND_NAMES.get(kind, kind)} frame before handshake"
            )
        self._events.append((kind, payload))

    # -- conversation frames -------------------------------------------------

    def send_request(self, envelope: Envelope) -> bytes:
        return encode_frame(REQUEST, envelope.to_wire())

    def send_response(self, correlation_id: int, response: Response) -> bytes:
        return encode_frame(
            RESPONSE,
            {"correlation_id": correlation_id, "response": response.to_wire()},
        )

    def send_oneway_ack(self, correlation_id: int) -> bytes:
        return encode_frame(ONEWAY_ACK, {"correlation_id": correlation_id})

    def send_fault(self, correlation_id: int, exc: BaseException) -> bytes:
        return encode_frame(
            FAULT,
            {"correlation_id": correlation_id, "fault": encode_fault(exc)},
        )

    def send_control(self, payload: Dict[str, Any]) -> bytes:
        return encode_frame(CONTROL, payload)

    def send_control_ok(self, payload: Dict[str, Any]) -> bytes:
        return encode_frame(CONTROL_OK, payload)
