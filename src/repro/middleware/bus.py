"""In-process message bus with pass-by-value marshalling.

The bus is the transport endpoint of the simulated middleware: the ORB
(S10/rpc) turns proxy calls into :class:`Request` messages wrapped in
:class:`~repro.middleware.envelope.Envelope` objects, and the bus delivers
them to registered servants, producing :class:`Response` messages.
Delivery runs through a pluggable
:class:`~repro.middleware.transport.Transport` (in-process synchronous by
default; queued-asynchronous for ``async``/oneway invocations) and a
single ordered :class:`~repro.middleware.envelope.InterceptorChain` that
carries the cross-cutting transport behaviour — fault injection, latency
simulation, delivery statistics — as named elements instead of inline
special cases.

Wire-type contract (what `marshal` guarantees end to end):

* primitives (``str``/``int``/``float``/``bool``/``bytes``/``None``)
  travel unchanged — ``bytes`` is a first-class wire type, so binary
  frame payloads (:mod:`repro.middleware.wire`) ride the same contract
  as every other argument instead of needing an encoding side channel;
* **lists stay lists and tuples stay tuples** — containers round-trip
  their concrete type, so a servant returning a tuple is observed as a
  tuple by the caller (they are deep-copied either way: mutations never
  cross the wire);
* dict keys must be strings; values recurse;
* registered servants travel by reference (:class:`ObjectRefData`),
  everything else non-marshallable is rejected with
  :class:`~repro.errors.MarshallingError` naming the *path* to the
  offending value (``state["accounts"][3]``), as a real ORB rejects a
  non-serializable argument.

Every value this contract admits has an exact binary encoding in
:mod:`repro.middleware.wire` — the frame codec socket transports frame
requests and responses with — so "marshallable" and "wire-encodable"
are the same predicate by construction.
"""

from __future__ import annotations

import collections
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, FrozenSet, Optional, Tuple

import repro.errors as errors_module
from repro.analysis.witness import named_lock
from repro.errors import MarshallingError, RemoteInvocationError, ReproError
from repro.middleware.clock import SimClock
from repro.middleware.envelope import (
    DEFAULT_QOS,
    Envelope,
    InterceptorChain,
    QoS,
    ReplyFuture,
    sim_latency_element,
)
from repro.middleware.faults import FaultInjector
from repro.middleware.transport import (
    InProcessTransport,
    LazyQueuedTransport,
    QueuedTransport,
    Transport,
    in_serving_thread,
)

_message_counter = itertools.count(1)

_PRIMITIVES = (str, int, float, bool, bytes, type(None))

#: retained per-delivery mutation records (see MessageBus._touch_log);
#: large enough that any realistic [before, after] replication window
#: fits, small enough that the hot path never scans far
TOUCH_LOG_LIMIT = 1024


@dataclass(frozen=True)
class ObjectRefData:
    """Wire form of a remote object reference."""

    object_id: str
    type_name: str


def marshal(value, ref_of: Optional[Callable] = None, root: str = "value"):
    """Deep-copy ``value`` into wire form (see the wire-type contract above).

    ``ref_of`` maps registered servant objects to :class:`ObjectRefData`
    (pass-by-reference); everything unregistered and non-primitive is
    rejected, as a real ORB would reject a non-serializable argument.
    The rejection names the *path* from ``root`` to the offending value
    (``state["accounts"][3]``), so a caller marshalling a deep state
    snapshot learns which field failed, not just the leaf's repr.
    """
    return _marshal(value, ref_of, root)


def _marshal(value, ref_of: Optional[Callable], path: str):
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, list):
        return [
            _marshal(item, ref_of, f"{path}[{i}]") for i, item in enumerate(value)
        ]
    if isinstance(value, tuple):
        # tuples round-trip as tuples: a servant returning a tuple must
        # not be observed as returning a list (wire-type fidelity)
        return tuple(
            _marshal(item, ref_of, f"{path}[{i}]") for i, item in enumerate(value)
        )
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise MarshallingError(
                    f"dict keys must be strings, got {key!r} at {path}"
                )
            out[key] = _marshal(item, ref_of, f"{path}[{key!r}]")
        return out
    if isinstance(value, ObjectRefData):
        return value
    if ref_of is not None:
        ref = ref_of(value)
        if ref is not None:
            return ref
    raise MarshallingError(
        f"value at {path}: {value!r} of type {type(value).__name__} "
        "is not marshallable"
    )


def wire_size(value) -> int:
    """Approximate wire size in bytes (for bus statistics)."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple)):
        return 2 + sum(wire_size(item) for item in value)
    if isinstance(value, dict):
        return 2 + sum(len(k) + wire_size(v) for k, v in value.items())
    if isinstance(value, ObjectRefData):
        return len(value.object_id) + len(value.type_name)
    return 8


@dataclass
class Request:
    object_id: str
    operation: str
    args: list
    kwargs: Dict[str, Any]
    context: Dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_counter))

    def to_wire(self) -> Dict[str, Any]:
        """The request as a plain wire dict (sans-IO: no bytes, no IO).

        Everything in it is already marshalled — args/kwargs went
        through :func:`marshal` when the request was built — so the
        whole dict is encodable by the frame codec without another
        marshalling pass.
        """
        return {
            "object_id": self.object_id,
            "operation": self.operation,
            "args": list(self.args),
            "kwargs": dict(self.kwargs),
            "context": dict(self.context),
            "message_id": self.message_id,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "Request":
        """Rebuild a request from its wire dict, preserving its identity
        (``message_id`` pairs the eventual response — never re-minted)."""
        return cls(
            object_id=data["object_id"],
            operation=data["operation"],
            args=list(data["args"]),
            kwargs=dict(data["kwargs"]),
            context=dict(data["context"]),
            message_id=data["message_id"],
        )


@dataclass
class Response:
    message_id: int
    result: Any = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.error_type is not None

    def to_wire(self) -> Dict[str, Any]:
        """The response as a plain wire dict (inverse of ``from_wire``)."""
        return {
            "message_id": self.message_id,
            "result": self.result,
            "error_type": self.error_type,
            "error_message": self.error_message,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "Response":
        return cls(
            message_id=data["message_id"],
            result=data["result"],
            error_type=data["error_type"],
            error_message=data["error_message"],
        )


def _rebuild_exception(response: Response) -> Exception:
    """Reconstruct a library exception by name; unknown types degrade to
    :class:`RemoteInvocationError` carrying the original description.

    Rebuilt exceptions are marked ``_remote_rebuilt``: crossing the
    wire-error conversion means a servant dispatch was already underway
    (effects may exist), so the QoS retry policy must never re-deliver
    them — even when the original type was a bare transport fault raised
    by a *nested* call inside the servant.
    """
    exc_type = getattr(errors_module, response.error_type or "", None)
    rebuilt: Exception
    if (
        isinstance(exc_type, type)
        and issubclass(exc_type, ReproError)
        and exc_type is not None
    ):
        try:
            rebuilt = exc_type(response.error_message)
        except TypeError:
            rebuilt = RemoteInvocationError(
                f"remote raised {response.error_type}: {response.error_message}"
            )
    else:
        rebuilt = RemoteInvocationError(
            f"remote raised {response.error_type}: {response.error_message}"
        )
    rebuilt._remote_rebuilt = True
    return rebuilt


class MessageBus:
    """Servant registry plus envelope delivery through transport + chain."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        faults: Optional[FaultInjector] = None,
        latency_ms: float = 0.5,
        transport: Optional[Transport] = None,
        delivery_workers: int = 2,
    ):
        self.clock = clock or SimClock()
        self.faults = faults or FaultInjector()
        self.latency_ms = latency_ms
        #: synchronous delivery path (caller-thread semantics by default)
        self.transport = transport or InProcessTransport()
        #: asynchronous delivery path, created lazily on first async call
        self.delivery_workers = delivery_workers
        self._async = LazyQueuedTransport(
            lambda: QueuedTransport(workers=self.delivery_workers, name="bus")
        )
        self._servants: Dict[str, Any] = {}
        self._stats_lock = named_lock("bus.stats")
        #: read-only operation classification per servant *type* name,
        #: declared by the deployment spec (``ServantSpec.read_only_ops``).
        #: Deliveries whose operation is NOT in its type's set bump
        #: :attr:`mutations` — the per-call mutation flag the federation's
        #: write-through replication consults to skip syncing partitions
        #: a routed call never mutated.  Unknown types default to
        #: "everything mutates" (the safe direction).
        self.read_only_ops: Dict[str, frozenset] = {}
        #: monotonic count of (possibly) mutating servant dispatches;
        #: bumped *before* dispatch so a call that fails mid-effect still
        #: registers as a mutation
        self.mutations = 0
        #: the per-delivery mutation record behind :attr:`mutations`:
        #: ``(mutation index, object_id)`` per mutating dispatch — nested
        #: in-process deliveries included, since every delivery funnels
        #: through the terminal.  Bounded: replication reads a window of
        #: it via :meth:`touched_since`, and an evicted window degrades
        #: to "touched unknown" (the safe, sync-everything direction).
        self._touch_log: Deque[Tuple[int, str]] = collections.deque(
            maxlen=TOUCH_LOG_LIMIT
        )
        #: optional hook wrapping servant dispatch: ``guard(object_id, fn)``.
        #: The runtime node installs its dispatcher's per-servant lock here
        #: so nested in-process deliveries serialize like routed requests.
        self.dispatch_guard: Optional[Callable[[str, Callable[[], Any]], Any]] = None
        #: delivery statistics for benchmarks
        self.messages_delivered = 0
        self.bytes_transferred = 0
        self.errors_returned = 0
        #: the one ordered element pipeline every delivery runs through
        self.chain = InterceptorChain()
        self.chain.add("faults", self.faults.interceptor("bus.deliver"))
        self.chain.add(
            "latency", sim_latency_element(self.clock, lambda: self.latency_ms)
        )
        self.chain.add("stats", self._stats_element)

    # -- servant registry ------------------------------------------------------

    def register_servant(self, object_id: str, servant: Any) -> None:
        if object_id in self._servants:
            raise RemoteInvocationError(f"object id {object_id!r} already registered")
        self._servants[object_id] = servant

    def unregister_servant(self, object_id: str) -> None:
        self._servants.pop(object_id, None)

    def servant(self, object_id: str) -> Any:
        try:
            return self._servants[object_id]
        except KeyError:
            raise RemoteInvocationError(f"unknown object id {object_id!r}") from None

    def is_registered(self, servant: Any) -> bool:
        return any(existing is servant for existing in self._servants.values())

    def mark_read_only(self, type_name: str, operations) -> None:
        """Set the read-only operation set of servant type ``type_name``.

        A read-only operation promises that its dispatch — including any
        nested calls it makes *into the same node* — leaves no servant
        state change behind.  Nested deliveries are still classified
        individually, so an operation wrongly marked read-only that
        nests a mutating call is caught by the nested delivery's own
        mutation bump.

        *Replace* semantics, not merge: reconciling onto a spec that
        reclassifies an operation as mutating must actually remove it
        from the set, or write-through replication would keep skipping
        its syncs.
        """
        with self._stats_lock:
            self.read_only_ops[type_name] = frozenset(operations)

    def touched_since(self, before: int) -> Optional[FrozenSet[str]]:
        """Object ids of servants mutated since mutation count ``before``.

        The replication layer brackets a routed call with two reads of
        :attr:`mutations` and asks for the servants touched in between —
        per-servant dirty tracking.  Returns ``None`` when part of the
        window has been evicted from the bounded record (the caller must
        then fall back to a full-partition sync).  A concurrent call's
        mutations landing inside the window only *add* ids — the safe
        direction: an extra servant gets refreshed, never one missed.
        """
        with self._stats_lock:
            expected = self.mutations - before
            if expected <= 0:
                return frozenset()
            touched = []
            for index, object_id in reversed(self._touch_log):
                if index <= before:
                    break
                touched.append(object_id)
            if len(touched) < expected:
                return None
            return frozenset(touched)

    # -- chain elements ----------------------------------------------------------

    def _stats_element(self, envelope: Envelope, proceed: Callable[[], Any]):
        request = envelope.request
        with self._stats_lock:
            self.messages_delivered += 1
            self.bytes_transferred += wire_size(request.args) + wire_size(
                request.kwargs
            )
        response = proceed()
        with self._stats_lock:
            if response.is_error:
                self.errors_returned += 1
            else:
                self.bytes_transferred += wire_size(response.result)
        return response

    # -- delivery ----------------------------------------------------------------

    @property
    def async_transport(self) -> QueuedTransport:
        return self._async.get()

    def _terminal(self, envelope: Envelope, dispatch) -> Response:
        """Execute the request against its servant; errors become wire
        responses — the terminal never leaks servant exceptions."""
        request = envelope.request
        try:
            servant = self.servant(request.object_id)
            read_only = request.operation in self.read_only_ops.get(
                type(servant).__name__, ()
            )
            if not read_only:
                # flagged before dispatch: a mutation that dies half-way
                # must still trigger the replication sync
                with self._stats_lock:
                    self.mutations += 1
                    self._touch_log.append((self.mutations, request.object_id))
            if self.dispatch_guard is not None:
                result = self.dispatch_guard(
                    request.object_id, lambda: dispatch(request, servant)
                )
            else:
                result = dispatch(request, servant)
            return Response(request.message_id, result=result)
        except Exception as exc:  # noqa: BLE001 - converted to wire error
            return Response(
                request.message_id,
                error_type=type(exc).__name__,
                error_message=str(exc),
            )

    def _handler(self, dispatch) -> Callable[[Envelope], Response]:
        return lambda envelope: self.chain.execute(
            envelope, lambda: self._terminal(envelope, dispatch)
        )

    def deliver(self, request: Request, dispatch: Callable[[Request, Any], Any]) -> Response:
        """Deliver ``request`` synchronously; ``dispatch`` invokes the servant.

        The two-hop latency (request + reply) is charged to the clock by
        the chain's latency element; servant exceptions come back as
        error responses, while injected *transport* faults (the chain's
        fault element) keep raising out, as a lost message would.
        """
        envelope = Envelope(request=request)
        return self.transport.submit(envelope, self._handler(dispatch)).raw()

    def submit(
        self,
        request: Request,
        dispatch: Callable[[Request, Any], Any],
        qos: QoS = DEFAULT_QOS,
    ) -> ReplyFuture:
        """Deliver ``request`` asynchronously; returns the reply future.

        The envelope (including its propagated context) is fully built on
        the caller's thread; only delivery happens on the queued
        transport's threads.  Oneway QoS still returns the future — the
        caller just never waits on it.

        Issued from a thread that is itself serving a request (a
        delivery thread or a dispatcher pool worker), the submission
        delivers inline instead: queueing it behind the bounded pools
        the caller occupies could deadlock, exactly like nested
        synchronous dispatch.
        """
        envelope = Envelope(request=request, qos=qos)
        if in_serving_thread():
            return self.transport.submit(envelope, self._handler(dispatch))
        return self.async_transport.submit(envelope, self._handler(dispatch))

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Wait for all in-flight asynchronous deliveries (oneways included)."""
        return self._async.drain(timeout_s)

    def shutdown(self) -> None:
        self._async.shutdown()

    @staticmethod
    def raise_remote(response: Response):
        """Re-raise a wire error client-side, preserving library exception types."""
        raise _rebuild_exception(response)
