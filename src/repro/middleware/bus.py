"""In-process message bus with pass-by-value marshalling.

The bus is the transport of the simulated middleware: the ORB (S10/rpc)
turns proxy calls into :class:`Request` messages, the bus delivers them to
registered servants and returns :class:`Response` messages.  Marshalling
rebuilds argument structures (lists/dicts/primitives) so callee mutations
never leak back to the caller — the semantic that distinguishes remote
from local calls and that the distribution concern's tests rely on.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import repro.errors as errors_module
from repro.errors import MarshallingError, RemoteInvocationError, ReproError
from repro.middleware.clock import SimClock
from repro.middleware.faults import FaultInjector

_message_counter = itertools.count(1)

_PRIMITIVES = (str, int, float, bool, bytes, type(None))


@dataclass(frozen=True)
class ObjectRefData:
    """Wire form of a remote object reference."""

    object_id: str
    type_name: str


def marshal(value, ref_of: Optional[Callable] = None):
    """Deep-copy ``value`` into wire form.

    ``ref_of`` maps registered servant objects to :class:`ObjectRefData`
    (pass-by-reference); everything unregistered and non-primitive is
    rejected, as a real ORB would reject a non-serializable argument.
    """
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, (list, tuple)):
        return [marshal(item, ref_of) for item in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise MarshallingError(f"dict keys must be strings, got {key!r}")
            out[key] = marshal(item, ref_of)
        return out
    if isinstance(value, ObjectRefData):
        return value
    if ref_of is not None:
        ref = ref_of(value)
        if ref is not None:
            return ref
    raise MarshallingError(
        f"value {value!r} of type {type(value).__name__} is not marshallable"
    )


def wire_size(value) -> int:
    """Approximate wire size in bytes (for bus statistics)."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, list):
        return 2 + sum(wire_size(item) for item in value)
    if isinstance(value, dict):
        return 2 + sum(len(k) + wire_size(v) for k, v in value.items())
    if isinstance(value, ObjectRefData):
        return len(value.object_id) + len(value.type_name)
    return 8


@dataclass
class Request:
    object_id: str
    operation: str
    args: list
    kwargs: Dict[str, Any]
    context: Dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_counter))


@dataclass
class Response:
    message_id: int
    result: Any = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.error_type is not None


def _rebuild_exception(response: Response) -> Exception:
    """Reconstruct a library exception by name; unknown types degrade to
    :class:`RemoteInvocationError` carrying the original description."""
    exc_type = getattr(errors_module, response.error_type or "", None)
    if (
        isinstance(exc_type, type)
        and issubclass(exc_type, ReproError)
        and exc_type is not None
    ):
        try:
            return exc_type(response.error_message)
        except TypeError:
            pass
    return RemoteInvocationError(
        f"remote raised {response.error_type}: {response.error_message}"
    )


class MessageBus:
    """Servant registry plus synchronous request delivery."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        faults: Optional[FaultInjector] = None,
        latency_ms: float = 0.5,
    ):
        self.clock = clock or SimClock()
        self.faults = faults or FaultInjector()
        self.latency_ms = latency_ms
        self._servants: Dict[str, Any] = {}
        self._stats_lock = threading.Lock()
        #: optional hook wrapping servant dispatch: ``guard(object_id, fn)``.
        #: The runtime node installs its dispatcher's per-servant lock here
        #: so nested in-process deliveries serialize like routed requests.
        self.dispatch_guard: Optional[Callable[[str, Callable[[], Any]], Any]] = None
        #: delivery statistics for benchmarks
        self.messages_delivered = 0
        self.bytes_transferred = 0
        self.errors_returned = 0

    # -- servant registry ------------------------------------------------------

    def register_servant(self, object_id: str, servant: Any) -> None:
        if object_id in self._servants:
            raise RemoteInvocationError(f"object id {object_id!r} already registered")
        self._servants[object_id] = servant

    def unregister_servant(self, object_id: str) -> None:
        self._servants.pop(object_id, None)

    def servant(self, object_id: str) -> Any:
        try:
            return self._servants[object_id]
        except KeyError:
            raise RemoteInvocationError(f"unknown object id {object_id!r}") from None

    def is_registered(self, servant: Any) -> bool:
        return any(existing is servant for existing in self._servants.values())

    # -- delivery ----------------------------------------------------------------

    def deliver(self, request: Request, dispatch: Callable[[Request, Any], Any]) -> Response:
        """Deliver ``request``; ``dispatch`` invokes the operation on the servant.

        The two-hop latency (request + reply) is charged to the clock.  Any
        exception from dispatch is converted into an error response — the
        bus itself never leaks exceptions except injected transport faults.
        """
        self.faults.check("bus.deliver")
        self.clock.advance(self.latency_ms)
        with self._stats_lock:
            self.messages_delivered += 1
            self.bytes_transferred += wire_size(request.args) + wire_size(
                request.kwargs
            )
        try:
            servant = self.servant(request.object_id)
            if self.dispatch_guard is not None:
                result = self.dispatch_guard(
                    request.object_id, lambda: dispatch(request, servant)
                )
            else:
                result = dispatch(request, servant)
            response = Response(request.message_id, result=result)
        except Exception as exc:  # noqa: BLE001 - converted to wire error
            with self._stats_lock:
                self.errors_returned += 1
            response = Response(
                request.message_id,
                error_type=type(exc).__name__,
                error_message=str(exc),
            )
        self.clock.advance(self.latency_ms)
        if not response.is_error:
            with self._stats_lock:
                self.bytes_transferred += wire_size(response.result)
        return response

    @staticmethod
    def raise_remote(response: Response):
        """Re-raise a wire error client-side, preserving library exception types."""
        raise _rebuild_exception(response)
