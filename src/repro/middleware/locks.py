"""Strict two-phase lock manager with deadlock detection.

Locks are held until the owning transaction releases them all (strict
2PL — the transaction manager releases at commit/rollback).  A request
that cannot be granted never blocks: it either detects a deadlock through
the wait-for graph (networkx cycle check) and raises
:class:`~repro.errors.DeadlockError`, or raises
:class:`~repro.errors.LockTimeoutError` to model a would-block conflict
the caller may retry.  The table itself is guarded by a mutex so the
concurrent dispatcher's worker threads see consistent state; because the
protocol raises instead of waiting, the mutex cannot participate in a
deadlock cycle.
"""

from __future__ import annotations

import enum
from typing import Dict, Set

import networkx as nx

from repro.analysis.witness import named_rlock
from repro.errors import DeadlockError, LockTimeoutError


class LockMode(enum.Enum):
    READ = "read"
    WRITE = "write"


class _LockEntry:
    __slots__ = ("mode", "holders")

    def __init__(self, mode: LockMode):
        self.mode = mode
        self.holders: Set[str] = set()


class LockManager:
    """Lock table keyed by arbitrary string resource keys."""

    def __init__(self):
        self._table: Dict[str, _LockEntry] = {}
        self._held_by_tx: Dict[str, Set[str]] = {}
        self._waits_for = nx.DiGraph()
        # one mutex guards the whole lock table: acquire/release from
        # concurrent dispatcher workers must see a consistent table and
        # wait-for graph (the 2PL protocol itself never blocks — it
        # raises — so a plain mutex cannot deadlock here)
        self._mutex = named_rlock("locks.table")
        #: statistics for the lock-contention benchmark
        self.grants = 0
        self.conflicts = 0
        self.deadlocks = 0

    # -- acquisition -----------------------------------------------------------

    def acquire(self, txid: str, key: str, mode: LockMode) -> None:
        """Grant ``mode`` on ``key`` to ``txid`` or raise on conflict."""
        with self._mutex:
            self._acquire_locked(txid, key, mode)

    def _acquire_locked(self, txid: str, key: str, mode: LockMode) -> None:
        entry = self._table.get(key)
        if entry is None:
            entry = _LockEntry(mode)
            entry.holders.add(txid)
            self._table[key] = entry
            self._held_by_tx.setdefault(txid, set()).add(key)
            self.grants += 1
            return
        if txid in entry.holders:
            if mode is LockMode.WRITE and entry.mode is LockMode.READ:
                if entry.holders == {txid}:
                    entry.mode = LockMode.WRITE  # upgrade
                    self.grants += 1
                    return
                self._conflict(txid, entry.holders - {txid}, key)
            self.grants += 1  # re-entrant grant
            return
        if mode is LockMode.READ and entry.mode is LockMode.READ:
            entry.holders.add(txid)
            self._held_by_tx.setdefault(txid, set()).add(key)
            self.grants += 1
            return
        self._conflict(txid, entry.holders, key)

    def _conflict(self, txid: str, holders: Set[str], key: str) -> None:
        """Register wait edges, detect deadlock, raise the right error."""
        self.conflicts += 1
        for holder in holders:
            self._waits_for.add_edge(txid, holder)
        try:
            cycles = txid in self._waits_for and any(
                txid in cycle for cycle in nx.simple_cycles(self._waits_for)
            )
        finally:
            pass
        if cycles:
            self.deadlocks += 1
            self._waits_for.remove_node(txid)
            raise DeadlockError(
                f"transaction {txid} deadlocked acquiring {key!r} "
                f"(held by {sorted(holders)})"
            )
        raise LockTimeoutError(
            f"transaction {txid} would block acquiring {key!r} "
            f"(held by {sorted(holders)})"
        )

    # -- release ------------------------------------------------------------------

    def release_all(self, txid: str) -> int:
        """Release every lock of ``txid`` (commit/rollback); returns the count."""
        with self._mutex:
            return self._release_all_locked(txid)

    def _release_all_locked(self, txid: str) -> int:
        keys = self._held_by_tx.pop(txid, set())
        for key in keys:
            entry = self._table.get(key)
            if entry is None:
                continue
            entry.holders.discard(txid)
            if not entry.holders:
                del self._table[key]
        if txid in self._waits_for:
            self._waits_for.remove_node(txid)
        # waits on txid are now resolvable; drop stale edges pointing at it
        stale = [
            (waiter, holder)
            for waiter, holder in self._waits_for.edges
            if holder == txid
        ]
        self._waits_for.remove_edges_from(stale)
        return len(keys)

    # -- queries ---------------------------------------------------------------------

    def holders_of(self, key: str) -> Set[str]:
        with self._mutex:
            entry = self._table.get(key)
            return set(entry.holders) if entry else set()

    def mode_of(self, key: str):
        with self._mutex:
            entry = self._table.get(key)
            return entry.mode if entry else None

    def locks_held(self, txid: str) -> Set[str]:
        with self._mutex:
            return set(self._held_by_tx.get(txid, set()))
