"""Flat transaction manager with two-phase commit over enlisted resources.

The transactions concern's generated aspect wraps application methods in
``manager.transaction()`` blocks and enlists the objects a method touches
(:meth:`TransactionManager.enlist_object`); state restoration on abort is
handled by :class:`ObjectSnapshotResource` before-images, isolation by
strict two-phase locking through the S10 lock manager.

Nesting uses *join* semantics: an inner ``begin`` joins the enclosing
transaction (depth counting), so a transactional method calling another
transactional method commits exactly once, at the outermost boundary —
the behaviour the semantic-coupling experiment (E9) depends on.
"""

from __future__ import annotations

import contextlib
import enum
import itertools
import threading
from typing import Any, Dict, List, Optional

from repro.analysis.witness import named_lock
from repro.errors import (
    NoTransactionError,
    TransactionAborted,
    TransactionError,
)
from repro.middleware.clock import SimClock
from repro.middleware.faults import FaultInjector
from repro.middleware.locks import LockManager, LockMode

_tx_counter = itertools.count(1)


class TransactionStatus(enum.Enum):
    ACTIVE = "active"
    PREPARING = "preparing"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Resource:
    """Participant interface of two-phase commit."""

    def prepare(self) -> None:
        """Vote: raise to vote no."""

    def commit(self) -> None:
        """Make the changes durable (must not fail after a yes vote)."""

    def rollback(self) -> None:
        """Undo the changes."""


class ObjectSnapshotResource(Resource):
    """Before-image of a plain object's ``__dict__``; restores on rollback."""

    def __init__(self, obj: Any):
        self.obj = obj
        self._before = dict(obj.__dict__)

    def rollback(self) -> None:
        self.obj.__dict__.clear()
        self.obj.__dict__.update(self._before)


class Transaction:
    """One flat transaction; created by the manager, not directly."""

    def __init__(self, manager: "TransactionManager"):
        self.txid = f"tx-{next(_tx_counter)}"
        self.manager = manager
        self.status = TransactionStatus.ACTIVE
        self.depth = 0  # join-nesting depth
        self.rollback_only = False
        self.rollback_reason: Optional[str] = None
        self.resources: List[Resource] = []
        self._enlisted_objects: Dict[int, ObjectSnapshotResource] = {}
        self.started_at = manager.clock.now()

    def enlist(self, resource: Resource) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionError(
                f"cannot enlist in {self.status.value} transaction {self.txid}"
            )
        self.resources.append(resource)

    def set_rollback_only(self, reason: str = "marked rollback-only") -> None:
        self.rollback_only = True
        if self.rollback_reason is None:
            self.rollback_reason = reason


class TransactionManager:
    """Begin/commit/rollback with a current-transaction stack.

    The current-transaction stack is *thread-local*: under the concurrent
    dispatcher each worker thread carries its own stack, so transactions
    started by independent requests never observe each other as "current".
    Single-threaded callers see exactly the old behaviour.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        faults: Optional[FaultInjector] = None,
        locks: Optional[LockManager] = None,
    ):
        self.clock = clock or SimClock()
        self.faults = faults or FaultInjector()
        self.locks = locks or LockManager()
        self._local = threading.local()
        self._stats_lock = named_lock("txn.stats")
        #: statistics for benchmarks
        self.commits = 0  # guarded_by: _stats_lock
        self.aborts = 0  # guarded_by: _stats_lock

    @property
    def _stack(self) -> List[Transaction]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- lifecycle -------------------------------------------------------------

    def current(self) -> Optional[Transaction]:
        return self._stack[-1] if self._stack else None

    def require_current(self) -> Transaction:
        tx = self.current()
        if tx is None:
            raise NoTransactionError("no active transaction")
        return tx

    def begin(self, join: bool = True) -> Transaction:
        """Start a transaction; with ``join`` (default), nest into any
        enclosing one instead of creating an independent sibling."""
        current = self.current()
        if current is not None and join:
            current.depth += 1
            return current
        tx = Transaction(self)
        self._stack.append(tx)
        return tx

    def commit(self, tx: Transaction) -> None:
        """Commit (outermost) or leave a join level (nested)."""
        self._check_current(tx)
        if tx.depth > 0:
            tx.depth -= 1
            return
        if tx.rollback_only:
            self.rollback(tx)
            raise TransactionAborted(
                tx.txid, tx.rollback_reason or "rollback-only"
            )
        tx.status = TransactionStatus.PREPARING
        try:
            for resource in tx.resources:
                self.faults.check("txn.prepare")
                resource.prepare()
        except Exception as exc:
            tx.status = TransactionStatus.ACTIVE
            self.rollback(tx)
            raise TransactionAborted(tx.txid, f"prepare failed: {exc}") from exc
        for resource in tx.resources:
            resource.commit()
        tx.status = TransactionStatus.COMMITTED
        self._finish(tx)
        with self._stats_lock:
            self.commits += 1

    def rollback(self, tx: Transaction, reason: Optional[str] = None) -> None:
        """Roll back; nested joins mark the whole transaction rollback-only."""
        self._check_current(tx)
        if tx.depth > 0:
            tx.depth -= 1
            tx.set_rollback_only(reason or "inner scope rolled back")
            return
        for resource in reversed(tx.resources):
            resource.rollback()
        tx.status = TransactionStatus.ABORTED
        tx.rollback_reason = reason or tx.rollback_reason
        self._finish(tx)
        with self._stats_lock:
            self.aborts += 1

    def _check_current(self, tx: Transaction) -> None:
        if self.current() is not tx:
            raise TransactionError(
                f"transaction {tx.txid} is not the current transaction"
            )

    def _finish(self, tx: Transaction) -> None:
        self._stack.pop()
        self.locks.release_all(tx.txid)

    # -- conveniences --------------------------------------------------------------

    @contextlib.contextmanager
    def transaction(self):
        """``with manager.transaction() as tx:`` — commit on success,
        rollback (and re-raise) on exception."""
        tx = self.begin()
        try:
            yield tx
        except TransactionAborted:
            raise
        except BaseException as exc:
            self.rollback(tx, reason=f"{type(exc).__name__}: {exc}")
            raise
        else:
            self.commit(tx)

    def enlist_object(self, obj: Any, tx: Optional[Transaction] = None) -> None:
        """Write-lock ``obj`` and snapshot it for rollback (idempotent per tx)."""
        tx = tx or self.require_current()
        if id(obj) in tx._enlisted_objects:
            return
        self.locks.acquire(tx.txid, f"obj:{id(obj)}", LockMode.WRITE)
        resource = ObjectSnapshotResource(obj)
        tx._enlisted_objects[id(obj)] = resource
        tx.enlist(resource)
