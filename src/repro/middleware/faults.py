"""Deterministic fault injection for the middleware substrate.

Faults are configured per *site* (a string such as ``"bus.deliver"`` or
``"txn.prepare"``).  Sites may be patterns: a configured site containing
``*`` or ``?`` is matched against checked sites with :mod:`fnmatch`
semantics (``"bus.*"`` targets the whole bus layer), letting scenario
fault campaigns cover a layer without enumerating every site.  An exact
configuration always takes precedence over pattern matches; patterns are
consulted in configuration order.

Two mechanisms compose:

* probabilistic faults from a seeded RNG (reproducible across runs), and
* scripted one-shot faults (``fail_next``) for targeted tests.

The injector is thread-safe: the concurrent dispatcher checks sites from
many worker threads, and the RNG, scripted counters, and statistics stay
consistent under that load.  Replay is deterministic for a fixed seed as
long as the *sequence* of checks is deterministic (e.g. the sequential
dispatcher, or a single client).
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass
from typing import Dict, Optional, Type

from repro.analysis.witness import named_rlock
from repro.errors import MiddlewareError


def _is_pattern(site: str) -> bool:
    return "*" in site or "?" in site or "[" in site


@dataclass
class FaultSpec:
    """Probability and exception type for one fault site."""

    probability: float = 0.0
    exception: Type[Exception] = MiddlewareError
    message: str = "injected fault"


class FaultInjector:
    """Decides, deterministically, whether an operation at a site fails."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._specs: Dict[str, FaultSpec] = {}
        self._scripted: Dict[str, int] = {}  # guarded_by: _lock
        self._lock = named_rlock("faults.injector")
        #: counters of injected faults per (concrete) site
        self.injected: Dict[str, int] = {}  # guarded_by: _lock

    def configure(
        self,
        site: str,
        probability: float,
        exception: Type[Exception] = MiddlewareError,
        message: Optional[str] = None,
    ) -> None:
        """Set a steady-state failure probability for ``site`` (or pattern)."""
        if not 0.0 <= probability <= 1.0:
            raise MiddlewareError(f"probability {probability} out of [0, 1]")
        with self._lock:
            self._specs[site] = FaultSpec(
                probability, exception, message or f"injected fault at {site}"
            )

    def fail_next(self, site: str, count: int = 1) -> None:
        """Force the next ``count`` operations at ``site`` to fail.

        ``site`` may be a pattern: ``fail_next("txn.*")`` fails the next
        operation checked at any site below ``txn.``.
        """
        if count < 1:
            raise MiddlewareError("fail_next count must be >= 1")
        with self._lock:
            self._scripted[site] = self._scripted.get(site, 0) + count

    def clear(self, site: Optional[str] = None) -> None:
        with self._lock:
            if site is None:
                self._specs.clear()
                self._scripted.clear()
            else:
                self._specs.pop(site, None)
                self._scripted.pop(site, None)

    # -- matching ----------------------------------------------------------------

    def _scripted_key(self, site: str) -> Optional[str]:
        """The scripted entry covering ``site``: exact first, then patterns."""
        if self._scripted.get(site, 0) > 0:
            return site
        for key, remaining in self._scripted.items():
            if remaining > 0 and _is_pattern(key) and fnmatch.fnmatchcase(site, key):
                return key
        return None

    def _spec_for(self, site: str) -> Optional[FaultSpec]:
        """The spec covering ``site``: exact first, then patterns in order."""
        spec = self._specs.get(site)
        if spec is not None:
            return spec
        for key, candidate in self._specs.items():
            if _is_pattern(key) and fnmatch.fnmatchcase(site, key):
                return candidate
        return None

    def interceptor(self, site: str):
        """This injector as a chain element: check ``site`` before delivery.

        The returned element plugs into an
        :class:`~repro.middleware.envelope.InterceptorChain`, so fault
        injection composes with latency, statistics, and metrics in one
        ordered pipeline instead of ad-hoc ``check()`` call sites.
        """

        def fault_element(envelope, proceed):
            self.check(site)
            return proceed()

        return fault_element

    def check(self, site: str) -> None:
        """Raise the configured exception if this operation should fail."""
        with self._lock:
            key = self._scripted_key(site)
            if key is not None:
                self._scripted[key] -= 1
                if self._scripted[key] == 0:
                    del self._scripted[key]
                self.injected[site] = self.injected.get(site, 0) + 1
                spec = self._spec_for(site)
                exception = spec.exception if spec else MiddlewareError
                raise exception(f"injected fault at {site} (scripted)")
            spec = self._spec_for(site)
            if spec and spec.probability > 0 and self._rng.random() < spec.probability:
                self.injected[site] = self.injected.get(site, 0) + 1
                raise spec.exception(spec.message)
