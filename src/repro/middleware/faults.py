"""Deterministic fault injection for the middleware substrate.

Faults are configured per *site* (a string such as ``"bus.deliver"`` or
``"txn.prepare"``).  Two mechanisms compose:

* probabilistic faults from a seeded RNG (reproducible across runs), and
* scripted one-shot faults (``fail_next``) for targeted tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Type

from repro.errors import MiddlewareError


@dataclass
class FaultSpec:
    """Probability and exception type for one fault site."""

    probability: float = 0.0
    exception: Type[Exception] = MiddlewareError
    message: str = "injected fault"


class FaultInjector:
    """Decides, deterministically, whether an operation at a site fails."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._specs: Dict[str, FaultSpec] = {}
        self._scripted: Dict[str, int] = {}
        #: counters of injected faults per site (for assertions and benches)
        self.injected: Dict[str, int] = {}

    def configure(
        self,
        site: str,
        probability: float,
        exception: Type[Exception] = MiddlewareError,
        message: Optional[str] = None,
    ) -> None:
        """Set a steady-state failure probability for ``site``."""
        if not 0.0 <= probability <= 1.0:
            raise MiddlewareError(f"probability {probability} out of [0, 1]")
        self._specs[site] = FaultSpec(
            probability, exception, message or f"injected fault at {site}"
        )

    def fail_next(self, site: str, count: int = 1) -> None:
        """Force the next ``count`` operations at ``site`` to fail."""
        if count < 1:
            raise MiddlewareError("fail_next count must be >= 1")
        self._scripted[site] = self._scripted.get(site, 0) + count

    def clear(self, site: Optional[str] = None) -> None:
        if site is None:
            self._specs.clear()
            self._scripted.clear()
        else:
            self._specs.pop(site, None)
            self._scripted.pop(site, None)

    def check(self, site: str) -> None:
        """Raise the configured exception if this operation should fail."""
        if self._scripted.get(site, 0) > 0:
            self._scripted[site] -= 1
            if self._scripted[site] == 0:
                del self._scripted[site]
            self.injected[site] = self.injected.get(site, 0) + 1
            spec = self._specs.get(site)
            exception = spec.exception if spec else MiddlewareError
            raise exception(f"injected fault at {site} (scripted)")
        spec = self._specs.get(site)
        if spec and spec.probability > 0 and self._rng.random() < spec.probability:
            self.injected[site] = self.injected.get(site, 0) + 1
            raise spec.exception(spec.message)
