"""Logical simulation clock.

All latency in the middleware substrate is *accounted*, not slept: the bus
advances the clock by the configured per-message latency, transaction and
credential timeouts compare against it, and benchmarks read it to report
simulated time independently of wall-clock noise.
"""

from __future__ import annotations

import threading

from repro.errors import MiddlewareError


class SimClock:
    """Monotonic logical clock measured in (simulated) milliseconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._now

    def advance(self, delta_ms: float) -> float:
        """Move time forward; negative deltas are rejected."""
        if delta_ms < 0:
            raise MiddlewareError(f"clock cannot go backwards ({delta_ms} ms)")
        with self._lock:
            self._now += delta_ms
            return self._now

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<SimClock t={self._now:.3f}ms>"
