"""Logical simulation clock.

All latency in the middleware substrate is *accounted*, not slept: the bus
advances the clock by the configured per-message latency, transaction and
credential timeouts compare against it, and benchmarks read it to report
simulated time independently of wall-clock noise.

The clock is also *waitable*: the virtual-time event scheduler
(:mod:`repro.runtime.load.scheduler`) drives it forward with
:meth:`SimClock.advance_to`, and any thread may block in
:meth:`SimClock.wait_until` until simulated time reaches a deadline —
virtual-time analogues of ``sleep``/``wall clock`` that make a million
simulated clients schedulable without a thread apiece.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.witness import named_condition
from repro.errors import MiddlewareError


class SimClock:
    """Monotonic logical clock measured in (simulated) milliseconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)  # guarded_by: _cond
        self._cond = named_condition("clock.sim")
        # kept as an alias: advance() has always serialized on one mutex
        self._lock = self._cond

    def now(self) -> float:
        return self._now

    def advance(self, delta_ms: float) -> float:
        """Move time forward; negative deltas are rejected."""
        if delta_ms < 0:
            raise MiddlewareError(f"clock cannot go backwards ({delta_ms} ms)")
        with self._cond:
            self._now += delta_ms
            self._cond.notify_all()
            return self._now

    def advance_to(self, target_ms: float) -> float:
        """Move time forward to an *absolute* instant.

        A no-op when ``target_ms`` is not ahead of now — concurrent
        advancers (the event scheduler setting event times while the
        transport accounts hop latency) may only ever race time
        forward, never backwards.
        """
        with self._cond:
            if target_ms > self._now:
                self._now = float(target_ms)
                self._cond.notify_all()
            return self._now

    def wait_until(
        self, deadline_ms: float, timeout_s: Optional[float] = None
    ) -> bool:
        """Block until simulated time reaches ``deadline_ms``.

        Returns True once ``now() >= deadline_ms``; False if the
        (wall-clock) ``timeout_s`` expired first.  Virtual time only
        moves when someone advances it, so a waiter with no timeout
        relies on another thread driving the clock.
        """
        with self._cond:
            return self._cond.wait_for(
                lambda: self._now >= deadline_ms, timeout=timeout_s
            )

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<SimClock t={self._now:.3f}ms>"
