"""Socket IO for the sans-IO wire protocol: listeners, pools, transport.

Everything protocol-shaped lives in :mod:`repro.middleware.wire` (frame
codec, handshake, fault encoding); this module owns the sockets and the
threads:

* :class:`WireServer` — a listener (TCP or unix-domain) that runs one
  :class:`~repro.middleware.wire.WireSession` per accepted connection
  and hands decoded REQUEST/CONTROL frames to callbacks.
* :class:`WireClient` — one handshaken client connection with a
  blocking send-one-await-one conversation step.
* :class:`ConnectionPool` — per-endpoint reuse of idle client
  connections (dial on miss, bounded idle keep).
* :class:`SocketTransport` — the :class:`~repro.middleware.transport.Transport`
  implementation: delivery runs inline on the caller's thread (socket
  waits release the GIL, which is the whole point), the QoS retry
  budget is honoured by the shared delivery core, and socket-level
  failures surface as :class:`~repro.errors.NodeDownError` classified
  by *when* they struck.  A failure before the request frame was fully
  written (no endpoint, dial refused, send error) is pre-effect — the
  peer can never have dispatched a partial frame — and is safe for the
  failover element and the QoS budget to re-deliver.  A failure *after*
  the frame was written (disconnect or timeout while awaiting the
  reply) is ``mid_call``: the effect may have executed, so it is not
  retryable here; only the failover element upgrades it, after
  confirming the node actually died (fail-stop rollback makes the
  re-delivery pre-effect again).  Reconnection is therefore not a
  private loop here: a retryable envelope redials simply by being
  re-delivered under its own budget.

Endpoints are strings: ``tcp://127.0.0.1:9307`` or
``unix:///tmp/node-a.sock``.
"""

from __future__ import annotations

import contextlib
import logging
import os
import select
import socket
import threading
from collections import deque
from typing import Any, Callable, Dict, Deque, Optional, Tuple

from repro.analysis.witness import named_lock
from repro.errors import NodeDownError, ProtocolError, TransportError
from repro.middleware.bus import Response
from repro.middleware.envelope import Envelope, ReplyFuture
from repro.middleware.transport import Handler, Transport, serving_request
from repro.middleware.wire import (
    CONTROL,
    CONTROL_OK,
    DEFAULT_MAX_FRAME,
    FAULT,
    ONEWAY_ACK,
    REQUEST,
    RESPONSE,
    WireSession,
    decode_fault,
)

_RECV_CHUNK = 64 * 1024

_log = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# endpoints
# ---------------------------------------------------------------------------


def parse_endpoint(endpoint: str) -> Tuple[str, Any]:
    """``tcp://host:port`` -> ("tcp", (host, port)); ``unix://path`` -> ("unix", path)."""
    if endpoint.startswith("tcp://"):
        rest = endpoint[len("tcp://"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not port.isdigit():
            raise TransportError(f"malformed tcp endpoint {endpoint!r}")
        return "tcp", (host or "127.0.0.1", int(port))
    if endpoint.startswith("unix://"):
        path = endpoint[len("unix://"):]
        if not path:
            raise TransportError(f"malformed unix endpoint {endpoint!r}")
        return "unix", path
    raise TransportError(
        f"unknown endpoint scheme {endpoint!r} (tcp:// or unix://)"
    )


def _dial(endpoint: str, timeout_s: float) -> socket.socket:
    family, address = parse_endpoint(endpoint)
    if family == "tcp":
        return socket.create_connection(address, timeout=timeout_s)
    if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
        raise TransportError("unix-domain sockets are unavailable here")
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout_s)
    sock.connect(address)
    return sock


# ---------------------------------------------------------------------------
# server side
# ---------------------------------------------------------------------------


class WireServer:
    """A wire-protocol listener serving one node's envelopes.

    ``request_handler(envelope) -> wire value`` executes a decoded
    REQUEST and returns the (already marshalled) result; exceptions
    become FAULT frames with retryability classified sender-side.
    ``control_handler(payload) -> dict`` answers CONTROL frames (deploy,
    state transfer, shutdown); a reply containing ``"__stop__"`` closes
    the server after it is sent — how a management conversation ends a
    worker from the outside.
    """

    def __init__(
        self,
        node: str,
        request_handler: Callable[[Envelope], Any],
        control_handler: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
        endpoint: str = "tcp://127.0.0.1:0",
        max_frame: int = DEFAULT_MAX_FRAME,
        backlog: int = 32,
    ):
        self.node = node
        self.request_handler = request_handler
        self.control_handler = control_handler
        self.max_frame = max_frame
        self._requested_endpoint = endpoint
        self._backlog = backlog
        self._listener: Optional[socket.socket] = None
        self._unix_path: Optional[str] = None
        self.endpoint: Optional[str] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: Dict[int, socket.socket] = {}  # guarded_by: _lock
        self._conn_counter = 0  # guarded_by: _lock
        self._lock = named_lock("sockets.server")
        self._closed = False
        self._stopped = threading.Event()
        #: served-frame counters (observable in tests and stats)
        self.requests_served = 0  # guarded_by: _lock
        self.faults_returned = 0  # guarded_by: _lock
        self.protocol_errors = 0  # guarded_by: _lock
        self.oneway_failures = 0  # guarded_by: _lock

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> str:
        """Bind, listen, and serve in the background; returns the endpoint."""
        family, address = parse_endpoint(self._requested_endpoint)
        if family == "tcp":
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(address)
            host, port = listener.getsockname()[:2]
            self.endpoint = f"tcp://{host}:{port}"
        else:
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
                raise TransportError("unix-domain sockets are unavailable here")
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            with contextlib.suppress(OSError):
                os.unlink(address)
            listener.bind(address)
            self._unix_path = address
            self.endpoint = f"unix://{address}"
        listener.listen(self._backlog)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"wire-accept-{self.node}", daemon=True
        )
        self._accept_thread.start()
        return self.endpoint

    def stop(self) -> None:
        """Close the listener and every open connection (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections = list(self._connections.values())
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        for conn in connections:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        if self._unix_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self._unix_path)
        self._stopped.set()

    @property
    def closed(self) -> bool:
        return self._closed

    def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Block until :meth:`stop` ran (a worker process's main loop)."""
        return self._stopped.wait(timeout_s)

    # -- serving -------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                if self._closed:
                    with contextlib.suppress(OSError):
                        conn.close()
                    return
                self._conn_counter += 1
                conn_id = self._conn_counter
                self._connections[conn_id] = conn
            threading.Thread(
                target=self._serve_connection,
                args=(conn_id, conn),
                name=f"wire-serve-{self.node}-{conn_id}",
                daemon=True,
            ).start()

    def _serve_connection(self, conn_id: int, conn: socket.socket) -> None:
        session = WireSession("server", node=self.node, max_frame=self.max_frame)
        try:
            conn.settimeout(None)
            while True:
                try:
                    data = conn.recv(_RECV_CHUNK)
                except OSError:
                    return
                if not data:
                    return
                try:
                    session.feed(data)
                except ProtocolError:
                    # beyond resynchronization: drop the connection (the
                    # peer sees a disconnect, never a hung call)
                    with self._lock:
                        self.protocol_errors += 1
                    return
                greeting = session.take_outbound()
                if greeting:
                    conn.sendall(greeting)
                for kind, payload in session.events():
                    try:
                        stop = self._serve_frame(conn, session, kind, payload)
                    except OSError:
                        return  # client went away while we replied
                    if stop:
                        return
        finally:
            with self._lock:
                self._connections.pop(conn_id, None)
            with contextlib.suppress(OSError):
                conn.close()

    def _serve_frame(self, conn, session, kind: int, payload: Any) -> bool:
        """Serve one conversation frame; True ends the connection."""
        if kind == REQUEST:
            envelope = Envelope.from_wire(payload)
            if envelope.is_oneway:
                # at-most-once effect, no client-visible error; the ack
                # follows the effect so a drained caller (the harness's
                # quiesce) knows every acked oneway has fully landed
                try:
                    with serving_request():
                        self.request_handler(envelope)
                except Exception as exc:  # noqa: BLE001 - oneway has no reply path
                    # nowhere to send a FAULT; count and log instead of
                    # discarding the only evidence the effect was lost
                    with self._lock:
                        self.oneway_failures += 1
                    _log.warning(
                        "oneway dispatch failed on %s: %s: %s",
                        self.node,
                        type(exc).__name__,
                        exc,
                    )
                with self._lock:
                    self.requests_served += 1
                conn.sendall(session.send_oneway_ack(envelope.correlation_id))
                return False
            try:
                with serving_request():
                    result = self.request_handler(envelope)
            except Exception as exc:  # noqa: BLE001 - crosses as FAULT frame
                with self._lock:
                    self.faults_returned += 1
                conn.sendall(session.send_fault(envelope.correlation_id, exc))
                return False
            response = Response(envelope.request.message_id, result=result)
            with self._lock:
                self.requests_served += 1
            conn.sendall(session.send_response(envelope.correlation_id, response))
            return False
        if kind == CONTROL:
            if self.control_handler is None:
                conn.sendall(
                    session.send_control_ok(
                        {"error": "node serves no control plane"}
                    )
                )
                return False
            try:
                reply = self.control_handler(dict(payload))
            except Exception as exc:  # noqa: BLE001 - crosses as error reply
                reply = {"error": f"{type(exc).__name__}: {exc}"}
            stop = bool(reply.pop("__stop__", False))
            conn.sendall(session.send_control_ok(reply))
            if stop:
                self.stop()
            return stop
        # RESPONSE/FAULT/ACK frames are client-bound; receiving one here
        # is a peer bug, not recoverable on this connection
        with self._lock:
            self.protocol_errors += 1
        return True


# ---------------------------------------------------------------------------
# client side
# ---------------------------------------------------------------------------


class WireClient:
    """One handshaken client connection (single caller at a time)."""

    def __init__(
        self,
        endpoint: str,
        node: str = "client",
        timeout_s: float = 10.0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ):
        self.endpoint = endpoint
        self._sock = _dial(endpoint, timeout_s)
        self._sock.settimeout(timeout_s)
        self.session = WireSession("client", node=node, max_frame=max_frame)
        self._sock.sendall(self.session.greeting())
        while not self.session.handshaken:
            data = self._sock.recv(_RECV_CHUNK)
            if not data:
                raise TransportError(
                    f"peer at {endpoint} closed during handshake"
                )
            self.session.feed(data)
        #: the node name the server announced in its HELLO-OK
        self.peer = self.session.peer

    def send(self, frame: bytes) -> None:
        """Write one frame; raising means the frame was NOT fully written,
        so the peer can never decode (let alone dispatch) the request."""
        self._sock.sendall(frame)

    def await_reply(self) -> Tuple[int, Any]:
        """Block for the next conversation frame from the peer."""
        while True:
            events = self.session.events()
            if events:
                return events[0]
            data = self._sock.recv(_RECV_CHUNK)
            if not data:
                raise TransportError(f"peer at {self.endpoint} disconnected")
            self.session.feed(data)

    def roundtrip(self, frame: bytes) -> Tuple[int, Any]:
        """Send one frame and block for the next conversation frame."""
        self.send(frame)
        return self.await_reply()

    def stale(self) -> bool:
        """True when the *idle* socket is readable: the peer closed it
        (EOF/RST pending) or sent bytes outside any conversation —
        either way it cannot carry a fresh at-most-once request."""
        try:
            readable, _, _ = select.select([self._sock], [], [], 0)
        except (OSError, ValueError):
            return True
        return bool(readable)

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self._sock.close()


class ConnectionPool:
    """Idle-connection reuse per endpoint (dial on miss)."""

    def __init__(
        self,
        node: str = "client",
        max_idle: int = 4,
        timeout_s: float = 10.0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ):
        self.node = node
        self.max_idle = max_idle
        self.timeout_s = timeout_s
        self.max_frame = max_frame
        self._idle: Dict[str, Deque[WireClient]] = {}  # guarded_by: _lock
        self._lock = named_lock("sockets.pool")
        self._closed = False
        #: pool statistics
        self.dials = 0
        self.reuses = 0

    def checkout(self, endpoint: str) -> Tuple[WireClient, bool]:
        """An idle or fresh connection; the flag says it was pooled.

        Idle entries are probed before reuse: a connection the peer
        closed while pooled is discarded here, *before* any request
        bytes are risked on it — the at-most-once contract never has to
        reason about a knowingly-dead socket."""
        discarded = []
        try:
            with self._lock:
                if self._closed:
                    raise TransportError("connection pool is shut down")
                queue = self._idle.get(endpoint)
                while queue:
                    client = queue.popleft()
                    if client.stale():
                        discarded.append(client)
                        continue
                    self.reuses += 1
                    return client, True
                self.dials += 1
        finally:
            for client in discarded:
                client.close()
        return (
            WireClient(
                endpoint,
                node=self.node,
                timeout_s=self.timeout_s,
                max_frame=self.max_frame,
            ),
            False,
        )

    def checkin(self, client: WireClient) -> None:
        with self._lock:
            if not self._closed:
                queue = self._idle.setdefault(client.endpoint, deque())
                if len(queue) < self.max_idle:
                    queue.append(client)
                    return
        client.close()

    def invalidate(self, endpoint: str) -> None:
        """Drop every idle connection to a (probably dead) endpoint."""
        with self._lock:
            stale = self._idle.pop(endpoint, deque())
        for client in stale:
            client.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            stale = [c for q in self._idle.values() for c in q]
            self._idle.clear()
        for client in stale:
            client.close()


# ---------------------------------------------------------------------------
# the transport
# ---------------------------------------------------------------------------


class SocketTransport(Transport):
    """Envelope delivery over pooled wire connections.

    ``submit`` delivers inline on the caller's thread — synchronous
    semantics, like :class:`~repro.middleware.transport.InProcessTransport`
    — through the shared retry core, so the envelope's QoS budget drives
    reconnection: a pre-effect failure (no endpoint, dial refused, the
    request frame rejected before it was fully written) raises
    :class:`~repro.errors.NodeDownError`, the failover element reacts,
    and the re-delivery dials whatever node the binding re-resolves to.
    A failure *after* the frame was written is the ambiguous mid-call
    case: it raises ``NodeDownError(pre_effect=False, mid_call=True)``
    and is never blind-retried here — the effect may already exist on
    the peer, so only the failover element (which can confirm the node
    is fail-stop dead and roll its state back to the standby snapshot)
    may make it retryable.

    The handler the routing layer passes in runs its interceptor chain
    client-side; the chain's terminal calls :meth:`roundtrip` to put the
    envelope on the wire.  The transport resolves node names to
    endpoints through the ``endpoints`` callable, so topology changes
    (failover promoting a different worker) need no transport surgery.
    """

    name = "socket"

    def __init__(
        self,
        endpoints: Callable[[str], Optional[str]],
        node: str = "client",
        timeout_s: float = 10.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        max_idle: int = 4,
    ):
        self.endpoints = endpoints
        self.pool = ConnectionPool(
            node=node, max_idle=max_idle, timeout_s=timeout_s, max_frame=max_frame
        )
        #: transport statistics
        self.roundtrips = 0  # guarded_by: _stats_lock
        self.disconnects = 0  # guarded_by: _stats_lock
        self._stats_lock = named_lock("sockets.stats")

    def submit(self, envelope: Envelope, handler: Handler) -> ReplyFuture:
        future = ReplyFuture(envelope)
        envelope.reply_to = future
        self._deliver(envelope, handler, future)
        return future

    # -- the wire hop --------------------------------------------------------

    def roundtrip(self, node: str, envelope: Envelope) -> Any:
        """Deliver ``envelope`` to ``node`` and return the wire result.

        Raises the decoded remote fault on FAULT frames.  Socket-level
        failures are classified by phase, because at-most-once hinges on
        it: a failure *before* the request frame was fully written (no
        endpoint, dial refused, send error — a partial frame can never
        decode, so no effect can exist) raises the pre-effect
        :class:`NodeDownError` the failover/retry path may re-deliver;
        a failure *after* the frame was written (disconnect or timeout
        while awaiting the reply) raises
        ``NodeDownError(pre_effect=False, mid_call=True)`` — the effect
        may have executed, so re-delivery is only safe once the failover
        element confirms the node is fail-stop dead.
        """
        endpoint = self.endpoints(node)
        if endpoint is None:
            raise NodeDownError(
                f"node {node!r} has no wire endpoint", node=node
            )
        try:
            client, pooled = self.pool.checkout(endpoint)
        except (OSError, TransportError) as exc:
            if isinstance(exc, NodeDownError):
                raise
            self._disconnected(endpoint)
            raise NodeDownError(
                f"node {node!r} unreachable at {endpoint}: {exc}", node=node
            ) from exc
        frame = client.session.send_request(envelope)
        try:
            client.send(frame)
        except (OSError, TransportError) as exc:
            client.close()
            self._disconnected(endpoint)
            if pooled:
                # the checkout probe can race the peer's close: a pooled
                # connection that rejected the *send* never delivered a
                # complete frame, so one blind fresh dial is effect-free
                return self._retry_fresh(node, endpoint, envelope, exc)
            raise NodeDownError(
                f"node {node!r} rejected the request at {endpoint}: {exc}",
                node=node,
            ) from exc
        return self._await_and_conclude(node, endpoint, envelope, client)

    def _retry_fresh(self, node, endpoint, envelope, cause) -> Any:
        """One fresh dial after a pooled connection refused the *send*.

        Only reachable pre-effect: the stale socket never accepted a
        complete request frame, so re-sending on a new connection cannot
        duplicate anything.  Failures here are classified exactly like a
        first attempt's."""
        try:
            client = WireClient(
                endpoint,
                node=self.pool.node,
                timeout_s=self.pool.timeout_s,
                max_frame=self.pool.max_frame,
            )
        except (OSError, TransportError) as exc:
            self._disconnected(endpoint)
            raise NodeDownError(
                f"node {node!r} unreachable at {endpoint}: {exc}", node=node
            ) from exc
        try:
            client.send(client.session.send_request(envelope))
        except (OSError, TransportError) as exc:
            client.close()
            self._disconnected(endpoint)
            raise NodeDownError(
                f"node {node!r} rejected the request at {endpoint}: {exc}",
                node=node,
            ) from exc
        return self._await_and_conclude(node, endpoint, envelope, client)

    def _await_and_conclude(
        self, node: str, endpoint: str, envelope: Envelope, client: WireClient
    ) -> Any:
        """The post-send half of a hop: any failure past this point is
        mid-call — the request frame is on the wire and the effect may
        run (or already have run) on the peer."""
        try:
            kind, payload = client.await_reply()
        except (OSError, TransportError) as exc:
            client.close()
            self._disconnected(endpoint)
            raise NodeDownError(
                f"node {node!r} gave no reply mid-call: {exc}",
                node=node,
                pre_effect=False,
                mid_call=True,
            ) from exc
        return self._conclude(node, envelope, client, kind, payload)

    def _conclude(
        self,
        node: str,
        envelope: Envelope,
        client: WireClient,
        kind: int,
        payload: Any,
    ):
        with self._stats_lock:
            self.roundtrips += 1
        if kind not in (RESPONSE, FAULT, ONEWAY_ACK):
            client.close()
            raise ProtocolError(
                f"expected a response frame from {node!r}, got kind {kind}"
            )
        got = payload.get("correlation_id") if isinstance(payload, dict) else None
        if got != envelope.correlation_id:
            # a stray or reordered frame must fail loudly, never be
            # paired with the wrong call; the connection is beyond trust
            client.close()
            raise ProtocolError(
                f"reply from {node!r} correlates to {got!r}, expected "
                f"{envelope.correlation_id}"
            )
        self.pool.checkin(client)
        if kind == FAULT:
            raise decode_fault(payload.get("fault", {}))
        if kind == ONEWAY_ACK:
            return None
        return Response.from_wire(payload["response"])

    def control(self, node: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One management round trip (deploy, state transfer, shutdown)."""
        endpoint = self.endpoints(node)
        if endpoint is None:
            raise NodeDownError(f"node {node!r} has no wire endpoint", node=node)
        try:
            client, _pooled = self.pool.checkout(endpoint)
        except (OSError, TransportError) as exc:
            self._disconnected(endpoint)
            raise NodeDownError(
                f"node {node!r} unreachable at {endpoint}: {exc}", node=node
            ) from exc
        try:
            kind, reply = client.roundtrip(client.session.send_control(payload))
        except (OSError, TransportError) as exc:
            client.close()
            self._disconnected(endpoint)
            raise NodeDownError(
                f"node {node!r} unreachable at {endpoint}: {exc}", node=node
            ) from exc
        if kind != CONTROL_OK:
            client.close()
            raise ProtocolError(
                f"expected a control reply from {node!r}, got kind {kind}"
            )
        self.pool.checkin(client)
        if "error" in reply:
            raise TransportError(
                f"control request to {node!r} failed: {reply['error']}"
            )
        return dict(reply)

    def _disconnected(self, endpoint: str) -> None:
        with self._stats_lock:
            self.disconnects += 1
        self.pool.invalidate(endpoint)

    # -- lifecycle -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._stats_lock:
            return {
                "roundtrips": self.roundtrips,
                "disconnects": self.disconnects,
                "dials": self.pool.dials,
                "reuses": self.pool.reuses,
            }

    def shutdown(self) -> None:
        self.pool.close()
