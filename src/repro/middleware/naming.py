"""Naming service: hierarchical names bound to object references.

A miniature CosNaming: names are ``/``-separated paths, contexts are
implicit (created on bind), and rebinding is an explicit, separate
operation so accidental shadowing fails loudly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import NamingError
from repro.middleware.bus import ObjectRefData


class NamingService:
    """Flat store of path-shaped names → :class:`ObjectRefData`."""

    def __init__(self):
        self._bindings: Dict[str, ObjectRefData] = {}

    @staticmethod
    def _normalize(name: str) -> str:
        if not name or not isinstance(name, str):
            raise NamingError(f"invalid name {name!r}")
        parts = [part for part in name.split("/") if part]
        if not parts:
            raise NamingError(f"invalid name {name!r}")
        return "/".join(parts)

    def bind(self, name: str, ref: ObjectRefData) -> None:
        """Bind a fresh name; rejects names already bound."""
        key = self._normalize(name)
        if key in self._bindings:
            raise NamingError(f"name {key!r} is already bound")
        self._bindings[key] = ref

    def rebind(self, name: str, ref: ObjectRefData) -> None:
        """Bind, replacing any existing binding."""
        self._bindings[self._normalize(name)] = ref

    def resolve(self, name: str) -> ObjectRefData:
        key = self._normalize(name)
        try:
            return self._bindings[key]
        except KeyError:
            raise NamingError(f"name {key!r} is not bound") from None

    def unbind(self, name: str) -> None:
        key = self._normalize(name)
        if key not in self._bindings:
            raise NamingError(f"name {key!r} is not bound")
        del self._bindings[key]

    def list(self, prefix: str = "") -> List[str]:
        """All bound names, optionally below a path prefix."""
        if not prefix:
            return sorted(self._bindings)
        key = self._normalize(prefix)
        return sorted(
            name
            for name in self._bindings
            if name == key or name.startswith(key + "/")
        )
