"""Envelopes: the unit every transport carries, plus the element pipeline.

An :class:`Envelope` wraps a :class:`~repro.middleware.bus.Request` (and,
once delivered, its :class:`~repro.middleware.bus.Response`) with the
metadata the invocation path needs end to end:

* a **correlation id** pairing replies with requests across asynchronous
  transports;
* a **reply-to** completion target (the :class:`ReplyFuture` the caller
  holds);
* the **propagated context** (transaction id, credentials, ...) captured
  on the caller's thread when the envelope is built;
* a per-call :class:`QoS` policy — oneway, timeout, retry budget.

Cross-cutting behaviour over envelopes — fault injection, latency
simulation, statistics, metrics, portable interceptors — composes as a
single ordered :class:`InterceptorChain` of small elements (the Slick
middlebox-pipeline shape), replacing the ad-hoc hook mechanisms the bus,
ORB, and federation each used to carry privately.

Delivery context: while a servant executes, the delivering layer
publishes the envelope's propagated context in a thread-local
(:func:`delivering` / :func:`current_delivery_context`), so nested
outbound calls made *by* the servant — including cross-node federation
hops — inherit the transaction id and credentials of the request they
serve without every servant having to thread them through by hand.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.witness import named_lock
from repro.errors import (
    InvocationTimeout,
    MiddlewareError,
    NodeDownError,
    PipelineError,
)

_correlation_counter = itertools.count(1)


# ---------------------------------------------------------------------------
# QoS policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QoS:
    """Per-call quality-of-service policy carried by an envelope.

    * ``oneway`` — fire-and-forget: the caller gets no reply and no
      error; delivery is attempted at most once per attempt budget.
    * ``timeout_ms`` — how long :meth:`ReplyFuture.result` waits before
      raising :class:`~repro.errors.InvocationTimeout` (``None`` = wait
      forever).
    * ``retries`` — how many times a *transport-level* fault (an exact
      :class:`~repro.errors.MiddlewareError`, the injector's default
      exception type) is retried before the caller sees it.  Application
      errors — servant exceptions, denials, aborts — are never retried.
    """

    oneway: bool = False
    timeout_ms: Optional[float] = None
    retries: int = 0

    def with_(self, **changes) -> "QoS":
        return replace(self, **changes)


DEFAULT_QOS = QoS()
ONEWAY_QOS = QoS(oneway=True)


def will_retry(envelope: "Envelope", exc: BaseException) -> bool:
    """THE retry decision — shared by transports (to re-deliver) and by
    observers such as the metrics element (to skip non-final attempts),
    so the predicate cannot desynchronize between them."""
    return envelope.attempt < envelope.qos.retries and is_retryable(exc)


def is_retryable(exc: BaseException) -> bool:
    """Retry policy: only *pre-effect* transport faults are safe to retry.

    Two classes qualify:

    * injected transport faults — raised as :class:`MiddlewareError`
      exactly (never a subclass), fired *before* the servant runs;
    * dead-node faults — :class:`~repro.errors.NodeDownError` with
      ``pre_effect`` set, raised at the federation's routing terminal
      before dispatch.  Re-delivery re-resolves the owner, so after the
      failover interceptor promotes a standby the retry lands on the
      new primary.

    Subclasses — remote invocation errors, denials, transaction aborts —
    carry application meaning and are surfaced to the caller untouched.
    An exception rebuilt from a wire error response (``_remote_rebuilt``)
    is excluded even when its type is bare: it crossed a servant
    dispatch — e.g. a nested call's transport fault *inside* servant
    code — so effects may already exist and re-delivery could duplicate
    them.
    """
    if getattr(exc, "_remote_rebuilt", False):
        return False
    if isinstance(exc, NodeDownError):
        return exc.pre_effect
    return type(exc) is MiddlewareError


# ---------------------------------------------------------------------------
# Envelope
# ---------------------------------------------------------------------------


@dataclass
class Envelope:
    """One message travelling through a transport: payload + call policy."""

    request: Any  #: the wrapped Request payload
    qos: QoS = DEFAULT_QOS
    #: pairs this envelope's reply with the caller-held future
    correlation_id: int = field(default_factory=lambda: next(_correlation_counter))
    #: where the reply goes (set by transports when a caller waits)
    reply_to: Optional["ReplyFuture"] = None
    #: routing target (federation node name; None for in-process buses)
    target: Optional[str] = None
    #: the federation *name* this call was routed by, when known; retries
    #: re-resolve it, so a redelivery lands on the current owner even if
    #: the shard migrated (or failed over) between attempts
    binding: Optional[str] = None
    #: metrics label (``Class.operation``); None suppresses recording
    label: Optional[str] = None
    #: delivery attempt number (0 = first try; bumped by retrying transports)
    attempt: int = 0
    #: the delivered reply payload, once the terminal produced one
    response: Any = None

    @property
    def context(self) -> Dict[str, Any]:
        """The propagated per-call context (txn id, credentials, ...)."""
        return getattr(self.request, "context", {})

    @property
    def is_oneway(self) -> bool:
        return self.qos.oneway

    # -- sans-IO wire form ----------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        """The envelope as a plain wire dict — no bytes, no IO.

        Everything a remote peer needs to re-dispatch the call travels:
        the marshalled request (with its propagated context), the QoS
        policy (so the receiving side can honour oneway semantics), the
        correlation id (pairing the reply frame), and the routing
        metadata.  ``reply_to`` and ``response`` stay local by design —
        they are the *caller's* half of the conversation.
        """
        return {
            "correlation_id": self.correlation_id,
            "qos": {
                "oneway": self.qos.oneway,
                "timeout_ms": self.qos.timeout_ms,
                "retries": self.qos.retries,
            },
            "target": self.target,
            "binding": self.binding,
            "label": self.label,
            "attempt": self.attempt,
            "request": self.request.to_wire(),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "Envelope":
        """Rebuild an envelope from its wire dict.

        The correlation id is *preserved*, never re-minted: the peer's
        reply frame must carry the id the sender is waiting on.
        """
        from repro.middleware.bus import Request

        qos_data = data["qos"]
        return cls(
            request=Request.from_wire(data["request"]),
            qos=QoS(
                oneway=qos_data["oneway"],
                timeout_ms=qos_data["timeout_ms"],
                retries=qos_data["retries"],
            ),
            correlation_id=data["correlation_id"],
            target=data["target"],
            binding=data["binding"],
            label=data["label"],
            attempt=data["attempt"],
        )


# ---------------------------------------------------------------------------
# Reply futures
# ---------------------------------------------------------------------------


class ReplyFuture:
    """The caller's handle on an in-flight invocation.

    Transports complete the future with the terminal's raw value (a
    :class:`Response` for bus deliveries, an already-hydrated result for
    federation hops) or fail it with the raised exception.  ``decode``
    post-processes the raw value on the *caller's* thread when
    :meth:`result` is called — the bus uses it to re-raise wire errors
    and hydrate references.
    """

    def __init__(
        self,
        envelope: Optional[Envelope] = None,
        decode: Optional[Callable[[Any], Any]] = None,
    ):
        self.envelope = envelope
        self._decode = decode
        self._event = threading.Event()
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["ReplyFuture"], None]] = []
        self._lock = named_lock("envelope.reply")

    # -- completion (transport side) ----------------------------------------

    def _complete(self, value: Any) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._value = value
            if self.envelope is not None:
                self.envelope.response = value
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _fail(self, exception: BaseException) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._exception = exception
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -- observation (caller side) -------------------------------------------

    def done(self) -> bool:
        return self._event.is_set()

    def add_done_callback(self, callback: Callable[["ReplyFuture"], None]) -> None:
        """Run ``callback(self)`` on completion (immediately if done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _wait(self, timeout_ms: Optional[float]) -> None:
        timeout = None if timeout_ms is None else timeout_ms / 1000.0
        if not self._event.wait(timeout):
            label = self.envelope.label if self.envelope is not None else None
            raise InvocationTimeout(
                f"no reply within {timeout_ms}ms"
                + (f" for {label}" if label else "")
            )

    _UNSET = object()

    def exception(self, timeout_ms: Optional[float] = None) -> Optional[BaseException]:
        self._wait(timeout_ms)
        return self._exception

    def raw(self, timeout_ms: Optional[float] = None) -> Any:
        """The undecoded completion value (raises the failure, if any)."""
        self._wait(timeout_ms)
        if self._exception is not None:
            raise self._exception
        return self._value

    def result(self, timeout_ms: Any = _UNSET) -> Any:
        """Wait for the reply and decode it; raises remote errors.

        Without an explicit ``timeout_ms`` the envelope's QoS timeout
        applies; pass ``None`` to wait forever.
        """
        if timeout_ms is self._UNSET:
            timeout_ms = (
                self.envelope.qos.timeout_ms if self.envelope is not None else None
            )
        value = self.raw(timeout_ms)
        if self._decode is not None:
            return self._decode(value)
        return value


# ---------------------------------------------------------------------------
# Interceptor chain (Slick-style element pipeline)
# ---------------------------------------------------------------------------

#: an element wraps delivery: ``element(envelope, proceed) -> value``
Element = Callable[[Envelope, Callable[[], Any]], Any]


class InterceptorChain:
    """An ordered, named pipeline of elements over envelopes.

    Elements run outermost-first in insertion order (unless placed with
    ``before``/``after``); each decides whether to call ``proceed()`` —
    short-circuiting, raising, measuring, or mutating the envelope on
    the way through.  One chain instance per layer (bus, federation)
    replaces that layer's ad-hoc hook mechanisms.
    """

    def __init__(self):
        self._elements: List[tuple] = []  # (name, element)

    def names(self) -> List[str]:
        return [name for name, _ in self._elements]

    def has(self, name: str) -> bool:
        return any(existing == name for existing, _ in self._elements)

    def add(
        self,
        name: str,
        element: Element,
        before: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "InterceptorChain":
        """Insert an element (append by default); chainable."""
        if self.has(name):
            raise PipelineError(f"interceptor {name!r} already in the chain")
        if before is not None and after is not None:
            raise PipelineError("give at most one of before/after")
        index = len(self._elements)
        if before is not None:
            index = self._index_of(before)
        elif after is not None:
            index = self._index_of(after) + 1
        self._elements.insert(index, (name, element))
        return self

    def remove(self, name: str) -> Element:
        index = self._index_of(name)
        _, element = self._elements.pop(index)
        return element

    def _index_of(self, name: str) -> int:
        for i, (existing, _) in enumerate(self._elements):
            if existing == name:
                return i
        raise PipelineError(f"no interceptor named {name!r} in the chain")

    def execute(self, envelope: Envelope, terminal: Callable[[], Any]) -> Any:
        """Run ``terminal`` inside the full element pipeline."""
        call = terminal
        for _, element in reversed(self._elements):
            call = _bind_element(element, envelope, call)
        return call()


def _bind_element(element: Element, envelope: Envelope, proceed: Callable[[], Any]):
    def step():
        return element(envelope, proceed)

    return step


# -- stock elements ----------------------------------------------------------


def sim_latency_element(clock, latency_ms: Callable[[], float]) -> Element:
    """Charge one hop of simulated latency each way around delivery."""

    def element(envelope: Envelope, proceed: Callable[[], Any]):
        clock.advance(latency_ms())
        try:
            return proceed()
        finally:
            clock.advance(latency_ms())

    return element


# ---------------------------------------------------------------------------
# Delivery-context propagation
# ---------------------------------------------------------------------------

_delivery_local = threading.local()


def _delivery_stack() -> List[Dict[str, Any]]:
    stack = getattr(_delivery_local, "frames", None)
    if stack is None:
        stack = _delivery_local.frames = []
    return stack


@contextlib.contextmanager
def delivering(context: Optional[Dict[str, Any]]):
    """Publish a request's propagated context for the executing thread.

    Installed by the layer that hands a request to application code (the
    node's dispatch path), so outbound calls the servant makes can
    inherit the caller's transaction id and credentials.
    """
    stack = _delivery_stack()
    stack.append(dict(context or {}))
    try:
        yield
    finally:
        stack.pop()


def current_delivery_context() -> Dict[str, Any]:
    """The innermost delivery context of this thread ({} outside dispatch)."""
    stack = _delivery_stack()
    return dict(stack[-1]) if stack else {}


def delivery_context_value(key: str) -> Optional[Any]:
    """One entry of the innermost delivery context, without copying it.

    Hot-path peek for per-delivery observers (the bus tracing element
    looks up the propagated trace this way on every dispatch)."""
    stack = getattr(_delivery_local, "frames", None)
    return stack[-1].get(key) if stack else None
