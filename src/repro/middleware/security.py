"""Security service: principals, authentication, ACLs, audit.

The security concern's generated aspect authenticates callers and guards
protected operations through :class:`AccessController`.  Credentials are
bearer tokens with a simulated-clock expiry; authorization is role- or
user-based ACL entries with ``fnmatch`` resource patterns, deny by
default; every decision is recorded in the :class:`AuditLog`.
"""

from __future__ import annotations

import fnmatch
import hashlib
import itertools
import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import AccessDeniedError, AuthenticationError, SecurityError
from repro.middleware.clock import SimClock

_token_counter = itertools.count(1)


@dataclass(frozen=True)
class Principal:
    """An authenticated identity with a role set."""

    name: str
    roles: FrozenSet[str] = frozenset()

    def has_role(self, role: str) -> bool:
        return role in self.roles


@dataclass(frozen=True)
class Credential:
    """A bearer token bound to a principal, valid until ``expires_at``."""

    token: str
    principal: Principal
    expires_at: float


class CredentialStore:
    """Username → salted-hash password store with role assignments."""

    def __init__(self):
        self._users: Dict[str, Tuple[bytes, bytes, FrozenSet[str]]] = {}

    @staticmethod
    def _hash(password: str, salt: bytes) -> bytes:
        return hashlib.sha256(salt + password.encode("utf-8")).digest()

    def add_user(self, name: str, password: str, roles: Iterable[str] = ()) -> None:
        if name in self._users:
            raise SecurityError(f"user {name!r} already exists")
        salt = os.urandom(16)
        self._users[name] = (salt, self._hash(password, salt), frozenset(roles))

    def remove_user(self, name: str) -> None:
        self._users.pop(name, None)

    def verify(self, name: str, password: str) -> Principal:
        record = self._users.get(name)
        if record is None:
            raise AuthenticationError(f"unknown user {name!r}")
        salt, digest, roles = record
        if self._hash(password, salt) != digest:
            raise AuthenticationError(f"bad password for user {name!r}")
        return Principal(name, roles)


class AuthenticationService:
    """Issues and validates expiring credentials against a store."""

    def __init__(
        self,
        store: CredentialStore,
        clock: Optional[SimClock] = None,
        ttl_ms: float = 60_000.0,
    ):
        self.store = store
        self.clock = clock or SimClock()
        self.ttl_ms = ttl_ms
        self._active: Dict[str, Credential] = {}

    def login(self, name: str, password: str) -> Credential:
        principal = self.store.verify(name, password)
        credential = Credential(
            token=f"tok-{next(_token_counter)}",
            principal=principal,
            expires_at=self.clock.now() + self.ttl_ms,
        )
        self._active[credential.token] = credential
        return credential

    def validate(self, token: Optional[str]) -> Credential:
        if not token:
            raise AuthenticationError("no credentials supplied")
        credential = self._active.get(token)
        if credential is None:
            raise AuthenticationError("unknown or revoked token")
        if self.clock.now() >= credential.expires_at:
            del self._active[token]
            raise AuthenticationError("credential expired")
        return credential

    def logout(self, token: str) -> None:
        self._active.pop(token, None)


@dataclass(frozen=True)
class AclEntry:
    subject: str          #: ``user:alice`` or ``role:teller``
    resource_pattern: str
    actions: FrozenSet[str]


class Acl:
    """Deny-by-default access-control list."""

    def __init__(self):
        self._entries: List[AclEntry] = []

    def allow_user(self, user: str, resource_pattern: str, actions: Iterable[str]) -> None:
        self._entries.append(AclEntry(f"user:{user}", resource_pattern, frozenset(actions)))

    def allow_role(self, role: str, resource_pattern: str, actions: Iterable[str]) -> None:
        self._entries.append(AclEntry(f"role:{role}", resource_pattern, frozenset(actions)))

    def permits(self, principal: Principal, resource: str, action: str) -> bool:
        subjects: Set[str] = {f"user:{principal.name}"}
        subjects.update(f"role:{role}" for role in principal.roles)
        for entry in self._entries:
            if entry.subject not in subjects:
                continue
            if action not in entry.actions and "*" not in entry.actions:
                continue
            if fnmatch.fnmatchcase(resource, entry.resource_pattern):
                return True
        return False


@dataclass(frozen=True)
class AuditRecord:
    timestamp: float
    principal: str
    resource: str
    action: str
    outcome: str  #: ``allow`` | ``deny`` | ``auth-failure``


class AuditLog:
    """Append-only audit trail of access decisions."""

    def __init__(self):
        self.records: List[AuditRecord] = []

    def record(self, timestamp, principal, resource, action, outcome) -> None:
        self.records.append(AuditRecord(timestamp, principal, resource, action, outcome))

    def denials(self) -> List[AuditRecord]:
        return [r for r in self.records if r.outcome != "allow"]

    def for_principal(self, name: str) -> List[AuditRecord]:
        return [r for r in self.records if r.principal == name]


class AccessController:
    """Authentication + authorization + audit in one check."""

    def __init__(
        self,
        auth: AuthenticationService,
        acl: Acl,
        audit: Optional[AuditLog] = None,
    ):
        self.auth = auth
        self.acl = acl
        self.audit = audit or AuditLog()

    def check_access(self, token: Optional[str], resource: str, action: str) -> Principal:
        """Validate the token and the permission; raises on either failure."""
        clock = self.auth.clock
        try:
            credential = self.auth.validate(token)
        except AuthenticationError:
            self.audit.record(clock.now(), "<anonymous>", resource, action, "auth-failure")
            raise
        principal = credential.principal
        if not self.acl.permits(principal, resource, action):
            self.audit.record(clock.now(), principal.name, resource, action, "deny")
            raise AccessDeniedError(
                f"{principal.name} may not {action} on {resource}"
            )
        self.audit.record(clock.now(), principal.name, resource, action, "allow")
        return principal
