"""Pluggable transports: how an envelope travels from caller to terminal.

Every invocation layer (bus, federation) hands its envelopes to a
:class:`Transport` with a *handler* — the layer's interceptor chain plus
terminal dispatch — and gets a
:class:`~repro.middleware.envelope.ReplyFuture` back.  Three flavours:

* :class:`InProcessTransport` — delivers inline on the caller's thread
  and returns an already-completed future.  The synchronous baseline:
  identical semantics (thread-locality, determinism) to a direct call.
* :class:`QueuedTransport` — a bounded set of daemon delivery threads
  draining a FIFO queue.  The caller keeps its future and continues —
  async invocation, oneway fire-and-forget, and reply pipelining all
  ride on it.  ``drain()`` quiesces (waits until nothing is queued or in
  flight) so harnesses can check invariants after the last oneway lands.
* :class:`SimulatedNetworkTransport` — decorates another transport with
  per-hop simulated-clock latency and optional real sleep, modelling a
  network link without the layers knowing.

All transports honour the envelope's :class:`~repro.middleware.envelope.QoS`
retry budget: a *bare* :class:`~repro.errors.MiddlewareError` (the fault
injector's default — raised before any servant effect) is re-delivered up
to ``qos.retries`` times; application errors are never retried, so
effects stay at-most-once per logical call.

Dead-node fault classification: a
:class:`~repro.errors.NodeDownError` whose ``pre_effect`` flag is set is
treated like any other pre-effect transport fault and re-delivered under
the same budget.  Because the federation's routed handler re-resolves
``envelope.binding`` on every delivery attempt, the retry that follows a
standby promotion lands on the new primary instead of hammering the dead
node — that is the whole failover path: fault → promote → re-deliver.
"""

from __future__ import annotations

import contextlib
import threading
from collections import deque
from typing import Any, Callable, Dict, Optional

from repro.analysis.witness import named_condition, named_lock
from repro.errors import TransportError
from repro.middleware.envelope import Envelope, ReplyFuture, will_retry

#: a handler delivers one envelope and returns the reply payload
Handler = Callable[[Envelope], Any]

#: marks threads currently serving a request — queued-transport delivery
#: threads AND dispatcher pool workers (the dispatcher enters the same
#: marker).  A servant that makes a nested asynchronous call while being
#: served must not queue it behind the (possibly exhausted) bounded
#: pools it is running on: two saturated pools waiting on each other
#: would deadlock the system, so nested submissions run inline instead —
#: the async analogue of the dispatcher's nested-dispatch rule.
_serving_local = threading.local()


@contextlib.contextmanager
def serving_request():
    """Mark this thread as serving a request for the duration."""
    previous = getattr(_serving_local, "serving", False)
    _serving_local.serving = True
    try:
        yield
    finally:
        _serving_local.serving = previous


def in_serving_thread() -> bool:
    """True while this thread serves a request (delivery or pool worker)."""
    return getattr(_serving_local, "serving", False)


class Transport:
    """Base transport: retry-aware delivery into a handler."""

    name = "transport"

    def submit(self, envelope: Envelope, handler: Handler) -> ReplyFuture:
        raise NotImplementedError

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Wait until no envelope is queued or in flight; True if quiet."""
        return True

    def shutdown(self) -> None:
        """Release delivery resources (idempotent)."""

    # -- shared delivery core ------------------------------------------------

    def _deliver(self, envelope: Envelope, handler: Handler, future: ReplyFuture) -> None:
        """Run ``handler`` with the QoS retry budget; complete ``future``."""
        attempt = 0
        while True:
            envelope.attempt = attempt
            try:
                value = handler(envelope)
            except BaseException as exc:  # noqa: BLE001 - routed to the future
                if will_retry(envelope, exc):
                    attempt += 1
                    continue
                future._fail(exc)
                return
            future._complete(value)
            return


class InProcessTransport(Transport):
    """Synchronous delivery on the caller's thread (the default)."""

    name = "in-process"

    def submit(self, envelope: Envelope, handler: Handler) -> ReplyFuture:
        future = ReplyFuture(envelope)
        envelope.reply_to = future
        self._deliver(envelope, handler, future)
        return future


class QueuedTransport(Transport):
    """Asynchronous delivery through a FIFO queue and worker threads.

    Threads start lazily on the first submit, so layers that never go
    asynchronous never pay for them.  Workers are daemons *and* the
    transport shuts down explicitly — hangs cannot outlive the process,
    and tests can join deterministically.
    """

    name = "queued"

    def __init__(self, workers: int = 2, name: str = "transport"):
        if workers < 1:
            raise TransportError(f"queued transport needs >= 1 worker, got {workers}")
        self.workers = workers
        self._name = name
        self._queue: "deque" = deque()
        self._mutex = named_lock("transport.queue")
        self._not_empty = named_condition("transport.queue", lock=self._mutex)
        self._idle = named_condition("transport.queue", lock=self._mutex)
        self._threads: list = []
        self._started = False
        self._closed = False
        self._in_flight = 0
        #: delivery statistics
        self.submitted = 0
        self.delivered = 0
        self.failed = 0

    # -- lifecycle -----------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started:
            return
        self._started = True
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._loop,
                name=f"deliver-{self._name}-{i}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def shutdown(self) -> None:
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            self._not_empty.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)

    # -- delivery ------------------------------------------------------------

    def submit(self, envelope: Envelope, handler: Handler) -> ReplyFuture:
        future = ReplyFuture(envelope)
        envelope.reply_to = future
        with self._mutex:
            if self._closed:
                raise TransportError(f"transport {self._name!r} is shut down")
            self._ensure_started()
            self._queue.append((envelope, handler, future))
            self.submitted += 1
            self._not_empty.notify()
        return future

    def _loop(self) -> None:
        while True:
            with self._mutex:
                while not self._queue and not self._closed:
                    self._not_empty.wait()
                if not self._queue:
                    return  # closed and drained
                envelope, handler, future = self._queue.popleft()
                self._in_flight += 1
            try:
                with serving_request():
                    self._deliver(envelope, handler, future)
            finally:
                with self._mutex:
                    self._in_flight -= 1
                    if future._exception is not None:
                        self.failed += 1
                    else:
                        self.delivered += 1
                    if not self._queue and self._in_flight == 0:
                        self._idle.notify_all()

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        with self._mutex:
            return self._idle.wait_for(
                lambda: not self._queue and self._in_flight == 0, timeout_s
            )

    def stats(self) -> Dict[str, int]:
        with self._mutex:
            return {
                "submitted": self.submitted,
                "delivered": self.delivered,
                "failed": self.failed,
                "queued": len(self._queue),
                "in_flight": self._in_flight,
                "workers": self.workers if self._started else 0,
            }


class LazyQueuedTransport:
    """Thread-safe lazy holder for a layer's queued (async) transport.

    Layers that never go asynchronous never start delivery threads; the
    double-checked creation is locked so two racing first async calls
    cannot each start a transport (the loser's threads would escape
    ``drain()``/``shutdown()``).  Both the bus and the federation hold
    their async transport through this helper, so the pattern lives
    once.
    """

    def __init__(self, factory: Callable[[], QueuedTransport]):
        self._factory = factory
        self._transport: Optional[QueuedTransport] = None
        self._lock = named_lock("transport.lazy")

    def get(self) -> QueuedTransport:
        if self._transport is None:
            with self._lock:
                if self._transport is None:
                    self._transport = self._factory()
        return self._transport

    def peek(self) -> Optional[QueuedTransport]:
        """The transport if it was ever needed, else None."""
        return self._transport

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        transport = self._transport
        return transport.drain(timeout_s) if transport is not None else True

    def shutdown(self) -> None:
        transport = self._transport
        if transport is not None:
            transport.shutdown()


class SimulatedNetworkTransport(Transport):
    """A network link in front of another transport.

    Charges simulated-clock latency for the request and reply hops and
    optionally sleeps real time (the I/O that concurrent delivery
    overlaps), then delegates delivery to the inner transport.
    """

    name = "simulated-network"

    def __init__(
        self,
        inner: Transport,
        clock,
        sim_latency_ms: float = 0.5,
        real_latency_s: float = 0.0,
    ):
        self.inner = inner
        self.clock = clock
        self.sim_latency_ms = sim_latency_ms
        self.real_latency_s = real_latency_s

    def submit(self, envelope: Envelope, handler: Handler) -> ReplyFuture:
        def networked(env: Envelope) -> Any:
            self.clock.advance(self.sim_latency_ms)
            if self.real_latency_s > 0:
                import time

                time.sleep(self.real_latency_s)
            try:
                return handler(env)
            finally:
                self.clock.advance(self.sim_latency_ms)

        return self.inner.submit(envelope, networked)

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        return self.inner.drain(timeout_s)

    def shutdown(self) -> None:
        self.inner.shutdown()
