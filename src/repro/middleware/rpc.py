"""Object request broker: remote references, dynamic proxies, interceptors.

The :class:`Orb` is the hub the distribution concern's generated aspect
talks to: it registers application objects as servants, binds them in the
naming service, and hands out :class:`RemoteProxy` objects whose method
calls travel through the bus with full marshalling.

Interceptors mirror CORBA portable interceptors: *client* interceptors run
when the request is built — on the caller's thread, once per logical call
(never per retry attempt), only for requests issued through this orb —
and *server* interceptors run before dispatch (access-control checks).
Transport-level cross-cutting behaviour (faults, latency, statistics)
lives in the bus's ordered
:class:`~repro.middleware.envelope.InterceptorChain` instead.

Invocation styles (all sharing one request-build path, so context
capture, marshalling, and interceptors behave identically):

* ``proxy.method(...)`` — synchronous round trip (in-process transport);
* ``proxy.method.async_(...)`` — returns a
  :class:`~repro.middleware.envelope.ReplyFuture`; delivery happens on
  the bus's queued transport while the caller continues;
* ``proxy.method.oneway(...)`` — fire-and-forget for void operations:
  no reply, no error surfaces, at-most-once servant effect.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import RemoteInvocationError
from repro.middleware.bus import (
    MessageBus,
    ObjectRefData,
    Request,
    Response,
    marshal,
)
from repro.middleware.envelope import DEFAULT_QOS, ONEWAY_QOS, QoS, ReplyFuture
from repro.middleware.naming import NamingService

ObjectRef = ObjectRefData

_object_counter = itertools.count(1)


class Orb:
    """Registers servants, mints references, builds proxies, runs interceptors."""

    def __init__(self, bus: Optional[MessageBus] = None, naming: Optional[NamingService] = None):
        self.bus = bus or MessageBus()
        self.naming = naming or NamingService()
        self.client_interceptors: List[Callable[[Request], None]] = []
        self.server_interceptors: List[Callable[[Request, Any], None]] = []
        self._refs_by_identity: Dict[int, ObjectRef] = {}
        # the implicit call context is thread-local: concurrent requests
        # dispatched on worker threads must not see each other's
        # credentials or transaction ids
        self._ctx_local = threading.local()

    # -- registration --------------------------------------------------------

    def register(self, servant: Any, name: Optional[str] = None) -> ObjectRef:
        """Register ``servant`` and optionally bind it in the naming service."""
        existing = self._refs_by_identity.get(id(servant))
        if existing is None:
            object_id = f"obj-{next(_object_counter)}"
            ref = ObjectRef(object_id, type(servant).__name__)
            self.bus.register_servant(object_id, servant)
            self._refs_by_identity[id(servant)] = ref
        else:
            ref = existing
        if name is not None:
            self.naming.rebind(name, ref)
        return ref

    def unregister(self, servant: Any) -> None:
        ref = self._refs_by_identity.pop(id(servant), None)
        if ref is not None:
            self.bus.unregister_servant(ref.object_id)

    def ref_of(self, servant: Any) -> Optional[ObjectRef]:
        """The reference of a registered servant (used by marshalling)."""
        return self._refs_by_identity.get(id(servant))

    # -- call context -----------------------------------------------------------

    @property
    def _context_stack(self) -> List[Dict[str, Any]]:
        stack = getattr(self._ctx_local, "frames", None)
        if stack is None:
            stack = self._ctx_local.frames = []
        return stack

    @contextlib.contextmanager
    def call_context(self, **entries):
        """Attach implicit per-call context (credentials, transaction id...)."""
        self._context_stack.append(entries)
        try:
            yield
        finally:
            self._context_stack.pop()

    def current_context(self) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        for frame in self._context_stack:
            merged.update(frame)
        return merged

    # -- proxies ---------------------------------------------------------------

    def proxy(self, target: Union[str, ObjectRef]) -> "RemoteProxy":
        """Build a dynamic proxy for a name or a reference."""
        ref = self.naming.resolve(target) if isinstance(target, str) else target
        return RemoteProxy(self, ref)

    # -- invocation path ---------------------------------------------------------

    def _build_request(self, ref: ObjectRef, operation: str, args: tuple, kwargs: dict) -> Request:
        """Marshal arguments and capture context on the *caller's* thread.

        Everything thread-sensitive (implicit context, argument
        snapshots, client interceptors) happens here, so asynchronous
        delivery threads only ever see a finished, self-contained
        envelope payload.  Client interceptors run exactly once per
        logical call — never per retry attempt, never for requests
        issued through another orb sharing the same bus.
        """
        if operation.startswith("_"):
            raise RemoteInvocationError(
                f"operation {operation!r} is not remotely accessible"
            )
        request = Request(
            object_id=ref.object_id,
            operation=operation,
            args=marshal(list(args), self.ref_of, root="args"),
            kwargs=marshal(dict(kwargs), self.ref_of, root="kwargs"),
            context=dict(self.current_context()),
        )
        for interceptor in self.client_interceptors:
            interceptor(request)
        return request

    def _decode(self, response: Response):
        """Reply post-processing on the caller's thread: raise wire errors,
        hydrate references into proxies."""
        if response.is_error:
            self.bus.raise_remote(response)
        return self._from_wire(response.result)

    def invoke(self, ref: ObjectRef, operation: str, args: tuple, kwargs: dict):
        request = self._build_request(ref, operation, args, kwargs)
        response = self.bus.deliver(request, self._dispatch)
        return self._decode(response)

    def invoke_async(
        self,
        ref: ObjectRef,
        operation: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        qos: QoS = DEFAULT_QOS,
    ) -> ReplyFuture:
        """Send the request and return immediately with a reply future."""
        request = self._build_request(ref, operation, args, kwargs or {})
        future = self.bus.submit(request, self._dispatch, qos=qos)
        future._decode = self._decode
        return future

    def invoke_oneway(
        self,
        ref: ObjectRef,
        operation: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        qos: QoS = ONEWAY_QOS,
    ) -> None:
        """Fire-and-forget: no reply, no client-visible error."""
        request = self._build_request(ref, operation, args, kwargs or {})
        self.bus.submit(request, self._dispatch, qos=qos)

    def _dispatch(self, request: Request, servant: Any):
        for interceptor in self.server_interceptors:
            interceptor(request, servant)
        method = getattr(servant, request.operation, None)
        if method is None or not callable(method):
            raise RemoteInvocationError(
                f"{type(servant).__name__} has no operation {request.operation!r}"
            )
        args = [self._from_wire(a) for a in request.args]
        kwargs = {k: self._from_wire(v) for k, v in request.kwargs.items()}
        context = dict(request.context)
        context["__dispatching__"] = True  # lets aspects detect server side
        with self.call_context(**context):
            result = method(*args, **kwargs)
        return marshal(result, self.ref_of, root="result")

    def _from_wire(self, value):
        """Hydrate wire values: references become proxies, containers recurse."""
        if isinstance(value, ObjectRefData):
            return RemoteProxy(self, value)
        if isinstance(value, list):
            return [self._from_wire(item) for item in value]
        if isinstance(value, tuple):
            return tuple(self._from_wire(item) for item in value)
        if isinstance(value, dict):
            return {key: self._from_wire(item) for key, item in value.items()}
        return value


class RemoteProxy:
    """Dynamic client stub: attribute access yields remote invocations.

    Each looked-up operation is a callable with two extra invocation
    styles attached: ``proxy.op.async_(...)`` (reply future) and
    ``proxy.op.oneway(...)`` (fire-and-forget).
    """

    __slots__ = ("_orb", "_ref")

    def __init__(self, orb: Orb, ref: ObjectRef):
        object.__setattr__(self, "_orb", orb)
        object.__setattr__(self, "_ref", ref)

    @property
    def ref(self) -> ObjectRef:
        return self._ref

    def __getattr__(self, operation: str):
        if operation.startswith("_"):
            raise AttributeError(operation)
        orb, ref = self._orb, self._ref

        def remote_call(*args, **kwargs):
            return orb.invoke(ref, operation, args, kwargs)

        def remote_call_async(*args, qos: QoS = DEFAULT_QOS, **kwargs) -> ReplyFuture:
            return orb.invoke_async(ref, operation, args, kwargs, qos=qos)

        def remote_call_oneway(*args, qos: QoS = ONEWAY_QOS, **kwargs) -> None:
            orb.invoke_oneway(ref, operation, args, kwargs, qos=qos)

        remote_call.__name__ = operation
        remote_call.async_ = remote_call_async
        remote_call.oneway = remote_call_oneway
        return remote_call

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<RemoteProxy {self._ref.type_name}@{self._ref.object_id}>"
