"""S10 — Simulated middleware substrate.

The paper's concerns — distribution, transactions, security — are
*middleware services*.  Real CORBA/J2EE infrastructure is unavailable (and
out of scope for a laptop reproduction), so this package implements an
in-process equivalent that exercises the same code paths the generated
concrete aspects target (see the substitution table in DESIGN.md):

* :mod:`repro.middleware.clock` — logical simulation clock;
* :mod:`repro.middleware.faults` — deterministic fault injection;
* :mod:`repro.middleware.envelope` — envelopes (correlation id,
  reply-to future, propagated context, QoS policy) and the ordered
  interceptor-chain element pipeline every delivery runs through;
* :mod:`repro.middleware.transport` — pluggable transports: in-process
  synchronous, queued-asynchronous (delivery threads), and
  simulated-latency network;
* :mod:`repro.middleware.bus` — message bus with pass-by-value
  marshalling, latency accounting and delivery statistics;
* :mod:`repro.middleware.naming` — naming service (bind/resolve);
* :mod:`repro.middleware.rpc` — object request broker with dynamic
  proxies, remote object references, and client/server interceptors;
* :mod:`repro.middleware.locks` — strict two-phase lock manager with
  wait-for-graph deadlock detection (networkx);
* :mod:`repro.middleware.txn` — flat transaction manager with two-phase
  commit over enlisted resources and object-snapshot resources;
* :mod:`repro.middleware.security` — principals, credential store,
  authentication, ACL-based access control, audit log.
"""

from repro.middleware.clock import SimClock
from repro.middleware.faults import FaultInjector, FaultSpec
from repro.middleware.bus import MessageBus, Request, Response
from repro.middleware.envelope import (
    DEFAULT_QOS,
    ONEWAY_QOS,
    Envelope,
    InterceptorChain,
    QoS,
    ReplyFuture,
    current_delivery_context,
)
from repro.middleware.transport import (
    InProcessTransport,
    QueuedTransport,
    SimulatedNetworkTransport,
    Transport,
)
from repro.middleware.naming import NamingService
from repro.middleware.rpc import ObjectRef, Orb, RemoteProxy
from repro.middleware.locks import LockManager, LockMode
from repro.middleware.txn import (
    ObjectSnapshotResource,
    Transaction,
    TransactionManager,
    TransactionStatus,
)
from repro.middleware.security import (
    AccessController,
    Acl,
    AuditLog,
    AuthenticationService,
    Credential,
    CredentialStore,
    Principal,
)

__all__ = [
    "SimClock",
    "FaultInjector",
    "FaultSpec",
    "MessageBus",
    "Request",
    "Response",
    "Envelope",
    "QoS",
    "DEFAULT_QOS",
    "ONEWAY_QOS",
    "ReplyFuture",
    "InterceptorChain",
    "current_delivery_context",
    "Transport",
    "InProcessTransport",
    "QueuedTransport",
    "SimulatedNetworkTransport",
    "NamingService",
    "Orb",
    "ObjectRef",
    "RemoteProxy",
    "LockManager",
    "LockMode",
    "TransactionManager",
    "Transaction",
    "TransactionStatus",
    "ObjectSnapshotResource",
    "Principal",
    "Credential",
    "CredentialStore",
    "AuthenticationService",
    "Acl",
    "AccessController",
    "AuditLog",
]
