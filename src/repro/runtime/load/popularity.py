"""Zipf-distributed key popularity: the hot-shard pressure generator.

Real traffic is never uniform: a few keys absorb most of the load
(rank-frequency follows a power law).  The closed-loop scenarios pick
partitions uniformly, so every shard heats evenly and hot-shard
pathologies stay invisible.  :class:`ZipfSampler` draws partition keys
with probability proportional to ``1 / rank**s`` over a *fixed, sorted*
key list — rank 1 is always the same key for a given key set, so two
same-seed runs hammer the same hot shard.

Sampling is inverse-CDF over the precomputed cumulative weights
(``bisect``; O(log n) per draw), exact for any exponent ``s >= 0``
(``s == 0`` degenerates to uniform).
"""

from __future__ import annotations

import bisect
import random
from typing import Any, Dict, List, Sequence

from repro.errors import ScenarioError


class ZipfSampler:
    """Draw keys with Zipf(s) popularity by rank over a fixed key list."""

    def __init__(self, keys: Sequence[str], s: float = 1.1):
        if not keys:
            raise ScenarioError("zipf sampler needs at least one key")
        if s < 0:
            raise ScenarioError(f"zipf exponent must be >= 0 (got {s})")
        #: rank order is the sorted key list — deterministic for a key set
        self.keys: List[str] = sorted(keys)
        self.s = float(s)
        self._cumulative: List[float] = []
        total = 0.0
        for rank in range(1, len(self.keys) + 1):
            total += 1.0 / (rank ** self.s)
            self._cumulative.append(total)
        self._total = total

    def probability(self, rank: int) -> float:
        """Exact probability of drawing the key at 1-based ``rank``."""
        if not 1 <= rank <= len(self.keys):
            raise ScenarioError(f"rank {rank} out of range")
        return (1.0 / (rank ** self.s)) / self._total

    def sample(self, rng: random.Random) -> str:
        point = rng.random() * self._total
        index = bisect.bisect_right(self._cumulative, point)
        if index >= len(self.keys):  # float edge: rng.random() ~ 1.0
            index = len(self.keys) - 1
        return self.keys[index]

    def to_dict(self) -> Dict[str, Any]:
        return {"s": self.s, "keys": len(self.keys)}
