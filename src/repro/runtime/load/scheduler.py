"""Virtual-time event scheduler: a heap of timed events over SimClock.

The open-loop driver never sleeps: every future action (an arrival, a
queue-drain marker, a gauge sample) is an entry in one binary heap keyed
by its virtual due time, and :meth:`VirtualTimeScheduler.run` pops them
in time order, advancing the federation's
:class:`~repro.middleware.clock.SimClock` to each event's instant via
``advance_to`` (forward-only; threads blocked in ``wait_until`` wake as
time passes their deadline).

Determinism guarantees:

* ties are broken by a monotone sequence number, so two events due at
  the same instant always fire in scheduling order;
* scheduling an event *before* the current virtual time raises — the
  heap can never make time go backwards;
* the scheduler is single-threaded by design (one ``run`` loop), so a
  fixed seed fixes the full event interleaving and therefore the digest.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import MiddlewareError
from repro.middleware.clock import SimClock

#: (due_ms, seq, action, payload)
_Event = Tuple[float, int, Callable[..., None], Any]


class VirtualTimeScheduler:
    """Single-threaded timed-event loop on a simulated clock."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[_Event] = []
        self._seq = 0
        #: virtual instant of the event currently (or last) dispatched
        self.now_ms = self.clock.now()
        #: events dispatched so far
        self.dispatched = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule_at(
        self, due_ms: float, action: Callable[..., None], payload: Any = None
    ) -> None:
        """Enqueue ``action(due_ms, payload)`` for virtual instant ``due_ms``."""
        if due_ms < self.now_ms:
            raise MiddlewareError(
                f"event scheduled at {due_ms:.3f} ms, but virtual time is "
                f"already {self.now_ms:.3f} ms — the heap cannot go backwards"
            )
        self._seq += 1
        heapq.heappush(self._heap, (float(due_ms), self._seq, action, payload))

    def schedule_after(
        self, delay_ms: float, action: Callable[..., None], payload: Any = None
    ) -> None:
        if delay_ms < 0:
            raise MiddlewareError(f"negative delay ({delay_ms} ms)")
        self.schedule_at(self.now_ms + delay_ms, action, payload)

    def step(self) -> bool:
        """Dispatch the next due event; False when the heap is empty."""
        if not self._heap:
            return False
        due_ms, _seq, action, payload = heapq.heappop(self._heap)
        # the heap orders events, the clock mirrors them: forward-only,
        # so a transport that accounted hop latency mid-event can never
        # be rewound by the next event's (earlier-looking) due time
        self.now_ms = due_ms
        self.clock.advance_to(due_ms)
        self.dispatched += 1
        action(due_ms, payload)
        return True

    def run(self, until_ms: Optional[float] = None) -> int:
        """Dispatch events in time order; returns how many ran.

        With ``until_ms`` the loop stops *before* the first event due
        past the horizon (the event stays queued).
        """
        ran = 0
        while self._heap:
            if until_ms is not None and self._heap[0][0] > until_ms:
                break
            self.step()
            ran += 1
        return ran
