"""Arrival-rate schedules: when open-loop operations are *offered*.

A schedule is a seeded generator of absolute arrival instants (virtual
milliseconds).  Arrivals are offered regardless of whether previous
operations completed — that is what makes the driver open-loop — so the
schedule alone decides the offered load, and the same seed always
produces the same arrival stream (digest determinism).

Four shapes:

* :class:`ConstantSchedule` — evenly spaced arrivals (a deterministic
  fluid approximation; no RNG draws at all);
* :class:`PoissonSchedule` — memoryless arrivals at a fixed rate
  (exponential inter-arrival gaps);
* :class:`BurstyStepSchedule` — a square wave between a base and a
  burst rate (thinned Poisson), the on/off overload shape;
* :class:`DiurnalSineSchedule` — a sine-modulated rate (thinned
  Poisson), the day/night traffic shape.

The time-varying shapes use Lewis–Shedler thinning against their peak
rate: candidate gaps are drawn at the peak rate and accepted with
probability ``rate(t) / peak``, so the generated process matches the
target intensity while staying a pure function of the seed.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Iterator

from repro.errors import ScenarioError


class ArrivalSchedule:
    """Base schedule: seeded, non-negative, monotone arrival instants."""

    kind = "arrival"

    def rate_at(self, t_ms: float) -> float:
        """Offered rate (operations per second) at virtual instant ``t_ms``."""
        raise NotImplementedError

    def arrivals(self, seed: int) -> Iterator[float]:
        """Yield absolute arrival times in virtual ms, never decreasing."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def describe(self) -> str:
        return ":".join(str(v) for v in self.to_dict().values())


class ConstantSchedule(ArrivalSchedule):
    """Evenly spaced arrivals at ``rate_per_s`` — zero RNG draws."""

    kind = "constant"

    def __init__(self, rate_per_s: float):
        if rate_per_s <= 0:
            raise ScenarioError(f"arrival rate must be > 0 (got {rate_per_s})")
        self.rate_per_s = float(rate_per_s)

    def rate_at(self, t_ms: float) -> float:
        return self.rate_per_s

    def arrivals(self, seed: int) -> Iterator[float]:
        gap_ms = 1000.0 / self.rate_per_s
        k = 1
        while True:
            yield k * gap_ms
            k += 1

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "rate_per_s": self.rate_per_s}


class PoissonSchedule(ArrivalSchedule):
    """Memoryless arrivals: exponential gaps at ``rate_per_s``."""

    kind = "poisson"

    def __init__(self, rate_per_s: float):
        if rate_per_s <= 0:
            raise ScenarioError(f"arrival rate must be > 0 (got {rate_per_s})")
        self.rate_per_s = float(rate_per_s)

    def rate_at(self, t_ms: float) -> float:
        return self.rate_per_s

    def arrivals(self, seed: int) -> Iterator[float]:
        rng = random.Random(seed)
        rate_per_ms = self.rate_per_s / 1000.0
        t = 0.0
        while True:
            t += rng.expovariate(rate_per_ms)
            yield t

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "rate_per_s": self.rate_per_s}


class _ThinnedSchedule(ArrivalSchedule):
    """Nonhomogeneous Poisson via thinning against the peak rate."""

    def peak_rate(self) -> float:
        raise NotImplementedError

    def arrivals(self, seed: int) -> Iterator[float]:
        rng = random.Random(seed)
        peak = self.peak_rate()
        peak_per_ms = peak / 1000.0
        t = 0.0
        while True:
            t += rng.expovariate(peak_per_ms)
            # accept with probability rate(t)/peak; one extra uniform
            # draw per candidate keeps the stream a pure seed function
            if rng.random() * peak < self.rate_at(t):
                yield t


class BurstyStepSchedule(_ThinnedSchedule):
    """A square wave: ``base_rate`` with ``burst_rate`` plateaus.

    Each ``period_ms`` window spends ``duty`` of its length at the
    burst rate (first), then falls back to the base rate — the shape
    that drives a federation past saturation and back every period.
    """

    kind = "bursty"

    def __init__(
        self,
        base_rate_per_s: float,
        burst_rate_per_s: float,
        period_ms: float,
        duty: float = 0.5,
    ):
        if base_rate_per_s < 0 or burst_rate_per_s <= 0:
            raise ScenarioError(
                "bursty schedule needs base >= 0 and burst > 0 "
                f"(got {base_rate_per_s}, {burst_rate_per_s})"
            )
        if burst_rate_per_s < base_rate_per_s:
            raise ScenarioError("burst rate must be >= base rate")
        if period_ms <= 0 or not 0.0 < duty < 1.0:
            raise ScenarioError("bursty schedule needs period > 0 and 0 < duty < 1")
        self.base_rate_per_s = float(base_rate_per_s)
        self.burst_rate_per_s = float(burst_rate_per_s)
        self.period_ms = float(period_ms)
        self.duty = float(duty)

    def peak_rate(self) -> float:
        return self.burst_rate_per_s

    def rate_at(self, t_ms: float) -> float:
        phase = math.fmod(t_ms, self.period_ms) / self.period_ms
        return self.burst_rate_per_s if phase < self.duty else self.base_rate_per_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "base_rate_per_s": self.base_rate_per_s,
            "burst_rate_per_s": self.burst_rate_per_s,
            "period_ms": self.period_ms,
            "duty": self.duty,
        }


class DiurnalSineSchedule(_ThinnedSchedule):
    """A sine-modulated rate: ``mean * (1 + amplitude * sin(2πt/period))``.

    ``amplitude`` in [0, 1] keeps the rate non-negative by
    construction; amplitude 1 touches zero at the trough.
    """

    kind = "diurnal"

    def __init__(self, mean_rate_per_s: float, amplitude: float, period_ms: float):
        if mean_rate_per_s <= 0:
            raise ScenarioError(f"arrival rate must be > 0 (got {mean_rate_per_s})")
        if not 0.0 <= amplitude <= 1.0:
            raise ScenarioError(
                f"diurnal amplitude must be in [0, 1] (got {amplitude}) — "
                "anything larger would demand a negative rate"
            )
        if period_ms <= 0:
            raise ScenarioError("diurnal schedule needs period > 0")
        self.mean_rate_per_s = float(mean_rate_per_s)
        self.amplitude = float(amplitude)
        self.period_ms = float(period_ms)

    def peak_rate(self) -> float:
        return self.mean_rate_per_s * (1.0 + self.amplitude)

    def rate_at(self, t_ms: float) -> float:
        phase = 2.0 * math.pi * (t_ms / self.period_ms)
        return self.mean_rate_per_s * (1.0 + self.amplitude * math.sin(phase))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "mean_rate_per_s": self.mean_rate_per_s,
            "amplitude": self.amplitude,
            "period_ms": self.period_ms,
        }


def parse_arrival(spec: str) -> ArrivalSchedule:
    """Parse a ``--arrival`` spec string into a schedule.

    Formats (rates in operations/second, periods in virtual ms)::

        constant:RATE
        poisson:RATE
        bursty:BASE:BURST:PERIOD_MS[:DUTY]
        diurnal:MEAN:AMPLITUDE:PERIOD_MS
    """
    parts = [p for p in str(spec).strip().split(":") if p != ""]
    if not parts:
        raise ScenarioError("empty arrival spec")
    kind, args = parts[0], parts[1:]
    try:
        values = [float(a) for a in args]
    except ValueError as exc:
        raise ScenarioError(f"bad arrival spec {spec!r}: {exc}") from None
    try:
        if kind == "constant" and len(values) == 1:
            return ConstantSchedule(values[0])
        if kind == "poisson" and len(values) == 1:
            return PoissonSchedule(values[0])
        if kind == "bursty" and len(values) in (3, 4):
            return BurstyStepSchedule(*values)
        if kind == "diurnal" and len(values) == 3:
            return DiurnalSineSchedule(*values)
    except ScenarioError:
        raise
    raise ScenarioError(
        f"bad arrival spec {spec!r} (expected constant:RATE, poisson:RATE, "
        "bursty:BASE:BURST:PERIOD_MS[:DUTY], or diurnal:MEAN:AMPLITUDE:PERIOD_MS)"
    )
