"""Bounded-lateness open-loop driver: millions of users, one thread.

Closed-loop clients hide overload: each waits for its previous reply,
so the offered rate sags to whatever the system can serve (coordinated
omission).  This driver is open-loop — an arrival schedule *offers*
operations at instants that do not depend on completions — and it runs
entirely on virtual time:

* simulated users live in a :class:`UserPopulation` — a struct-of-arrays
  state machine store (four unsigned counters per user), so a million
  users cost ~16 MB and zero threads or sockets;
* each federation node is modeled as a service station with
  ``dispatcher workers`` parallel channels and a fixed virtual service
  time per operation; queue wait is the gap between an operation's
  *intended* arrival instant (from the schedule) and its *actual* issue
  instant (when a channel frees) — recorded, not hidden;
* admission is bounded-lateness: an arrival whose predicted queue wait
  exceeds ``max_lateness_ms`` is **shed** before execution.  Under
  overload the queue therefore never grows without bound, every
  admitted operation still meets its latency SLO, and goodput plateaus
  at capacity instead of collapsing — reject, don't drown;
* admitted operations execute *for real* against the federation (the
  full interceptor chain, transactions, security, replication), so the
  scenario's state oracles — money conservation and friends — hold for
  open-loop runs exactly as they do for closed-loop ones.

Everything runs on one thread through the
:class:`~repro.runtime.load.scheduler.VirtualTimeScheduler`, so a fixed
seed fixes the arrival stream, the key popularity, the shed set, and
the servant effect order — open-loop runs are digest-deterministic.
"""

from __future__ import annotations

import heapq
from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.errors import ReproError, ScenarioError
from repro.runtime.load.popularity import ZipfSampler
from repro.runtime.load.schedule import ArrivalSchedule, parse_arrival
from repro.runtime.load.scheduler import VirtualTimeScheduler
from repro.runtime.metrics import goodput_summary
from repro.runtime.observability.histogram import LogHistogram

#: driver knobs and their defaults; ``RunConfig.open_loop`` overrides
#: per key (unknown keys are rejected so typos cannot silently no-op)
OPEN_LOOP_DEFAULTS: Dict[str, Any] = {
    #: simulated-user population size
    "users": 10_000,
    #: arrival spec string (see load.schedule.parse_arrival)
    "arrival": "poisson:2000",
    #: Zipf popularity exponent over the scenario's partition keys
    "zipf_s": 1.1,
    #: admission bound: predicted queue wait above this sheds the op
    "max_lateness_ms": 50.0,
    #: modeled virtual service time per operation and channel
    "service_time_ms": 0.2,
    #: virtual period of queue-depth gauge samples
    "sample_every_ms": 250.0,
    #: SLO-oracle knob: shed fraction the scenario tolerates (1.0 = any)
    "max_shed_fraction": 1.0,
}


def _hist_ms(hist: LogHistogram) -> Dict[str, float]:
    """A LogHistogram as the standard ms summary block."""
    return {
        "count": hist.count,
        "mean_ms": hist.mean() * 1000.0,
        "p50_ms": hist.percentile(0.50) * 1000.0,
        "p95_ms": hist.percentile(0.95) * 1000.0,
        "p99_ms": hist.percentile(0.99) * 1000.0,
        "p999_ms": hist.percentile(0.999) * 1000.0,
        "max_ms": (hist.max_seen if hist.count else 0.0) * 1000.0,
    }


class UserPopulation:
    """Struct-of-arrays store of simulated-user state machines.

    Each user is four unsigned counters (issued / ok / failed / shed):
    a state machine driven by the arrival events that select it, held
    in flat C arrays instead of per-user objects so populations in the
    millions stay cheap to allocate and walk.
    """

    __slots__ = ("size", "issued", "ok", "failed", "shed")

    def __init__(self, size: int):
        if size < 1:
            raise ScenarioError(f"need at least one simulated user (got {size})")
        self.size = int(size)
        zero = array("I", [0])
        self.issued = zero * self.size
        self.ok = zero * self.size
        self.failed = zero * self.size
        self.shed = zero * self.size

    def stats(self) -> Dict[str, int]:
        return {
            "size": self.size,
            #: users the arrival process actually selected at least once
            "active": self.size - self.issued.count(0),
            "max_ops_one_user": max(self.issued) if self.size else 0,
        }


class _Station:
    """One node as a queueing station: parallel channels, FIFO wait."""

    __slots__ = ("name", "channels", "waiting", "admitted", "shed", "max_waiting")

    def __init__(self, name: str, channels: int):
        self.name = name
        #: min-heap of per-channel free-at instants (virtual ms)
        self.channels: List[float] = [0.0] * max(1, channels)
        self.waiting = 0
        self.admitted = 0
        self.shed = 0
        self.max_waiting = 0


@dataclass
class LoadReport:
    """Outcome of one open-loop run (all latencies in *virtual* ms)."""

    config: Dict[str, Any]
    users: Dict[str, int]
    offered: int
    admitted: int
    completed_ok: int
    failed: int
    shed: int
    virtual_duration_ms: float
    goodput: Dict[str, float]
    response: Dict[str, float]
    lateness: Dict[str, float]
    stations: Dict[str, Dict[str, Any]]
    outcomes: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def slo_ms(self) -> float:
        """Worst virtual response an admitted op can see: the admission
        bound plus one service time."""
        return self.config["max_lateness_ms"] + self.config["service_time_ms"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config,
            "users": self.users,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed_ok": self.completed_ok,
            "failed": self.failed,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "virtual_duration_ms": self.virtual_duration_ms,
            "slo_ms": self.slo_ms,
            "goodput": self.goodput,
            "response": self.response,
            "lateness": self.lateness,
            "stations": self.stations,
        }


class OpenLoopDriver:
    """Drive one scenario open-loop on the virtual-time scheduler."""

    def __init__(self, federation, scenario, state, run_config, clients):
        self.federation = federation
        self.scenario = scenario
        self.state = state
        self.run_config = run_config
        self.clients = clients
        if not clients:
            raise ScenarioError("open-loop driving needs at least one client")
        options = dict(OPEN_LOOP_DEFAULTS)
        overrides = run_config.open_loop or {}
        unknown = set(overrides) - set(options)
        if unknown:
            raise ScenarioError(
                f"unknown open_loop option(s): {', '.join(sorted(unknown))}"
            )
        options.update(overrides)
        if options["max_lateness_ms"] < 0 or options["service_time_ms"] < 0:
            raise ScenarioError("open_loop latencies must be >= 0")
        if options["sample_every_ms"] <= 0:
            raise ScenarioError("sample_every_ms must be > 0")
        self.options = options
        arrival = options["arrival"]
        self.schedule: ArrivalSchedule = (
            arrival if isinstance(arrival, ArrivalSchedule) else parse_arrival(arrival)
        )
        try:
            keys = scenario.open_loop_keys(state)
        except NotImplementedError:
            raise ScenarioError(
                f"scenario {scenario.name!r} does not support open-loop "
                "driving (no open_loop_keys/open_loop_op)"
            ) from None
        self.zipf = ZipfSampler(keys, s=float(options["zipf_s"]))
        self.population = UserPopulation(int(options["users"]))
        self.budget = int(run_config.ops)
        # one master RNG: user selection, key popularity, and op mix all
        # draw from it in one fixed order, so the seed fixes the run
        import random

        self.rng = random.Random(run_config.seed * 86_243 + 11)
        self.sched = VirtualTimeScheduler(federation.clock)
        self._arrivals = self.schedule.arrivals(run_config.seed * 52_361 + 5)
        self._stations: Dict[str, _Station] = {}
        self._outcomes: Dict[str, Dict[str, int]] = {}
        self._response = LogHistogram()
        self._lateness = LogHistogram()
        self._offered = 0
        self._ok = 0
        self._failed = 0
        self._shed = 0
        self._last_completion_ms = 0.0

    # -- stations ---------------------------------------------------------------

    def _station_for(self, key: str) -> _Station:
        node = self.federation.node_for(key)
        station = self._stations.get(node.name)
        if station is None:
            channels = max(1, node.dispatcher.workers or 1)
            station = self._stations[node.name] = _Station(node.name, channels)
        return station

    # -- events -----------------------------------------------------------------

    def _on_arrival(self, t_ms: float, _payload) -> None:
        self._offered += 1
        uid = self.rng.randrange(self.population.size)
        self.population.issued[uid] += 1
        key = self.zipf.sample(self.rng)
        client = self.clients[uid % len(self.clients)]
        label, thunk = self.scenario.open_loop_op(
            self.rng, self.federation, self.state, client, key
        )
        results = self._outcomes.setdefault(label, {})
        station = self._station_for(key)
        free_at = station.channels[0]
        start = t_ms if free_at <= t_ms else free_at
        wait = start - t_ms
        if wait > self.options["max_lateness_ms"]:
            # bounded lateness: refuse work the SLO already lost
            station.shed += 1
            self._shed += 1
            self.population.shed[uid] += 1
            results["shed"] = results.get("shed", 0) + 1
        else:
            station.admitted += 1
            completion = start + self.options["service_time_ms"]
            heapq.heapreplace(station.channels, completion)
            if start > t_ms:
                station.waiting += 1
                if station.waiting > station.max_waiting:
                    station.max_waiting = station.waiting
                self.sched.schedule_at(start, self._on_issue, station)
            self._lateness.add(wait / 1000.0)
            tracer = self.federation.observability.tracer
            trace_id = tracer.trace_id_for(
                self.run_config.seed, uid % 0xFFFF, self._offered % 0xFFFFFF
            )
            try:
                with tracer.client_span(label, trace_id):
                    thunk()
            except ReproError as exc:
                key_name = type(exc).__name__
                results[key_name] = results.get(key_name, 0) + 1
                self._failed += 1
                self.population.failed[uid] += 1
            else:
                results["ok"] = results.get("ok", 0) + 1
                self._ok += 1
                self.population.ok[uid] += 1
            self._response.add((completion - t_ms) / 1000.0)
            if completion > self._last_completion_ms:
                self._last_completion_ms = completion
        if self._offered < self.budget:
            self.sched.schedule_at(next(self._arrivals), self._on_arrival)

    def _on_issue(self, _t_ms: float, station: _Station) -> None:
        """A queued op reached its channel: its wait is over."""
        station.waiting -= 1

    def _on_sample(self, t_ms: float, _payload) -> None:
        """Queue-depth gauges, sampled on the virtual clock."""
        board = self.federation.metrics.gauges
        for name, station in sorted(self._stations.items()):
            board.set(f"load.{name}.queue_depth", station.waiting)
            board.set(
                f"load.{name}.busy_channels",
                sum(1 for free_at in station.channels if free_at > t_ms),
            )
        if self._offered < self.budget:
            self.sched.schedule_at(
                t_ms + self.options["sample_every_ms"], self._on_sample
            )

    # -- run --------------------------------------------------------------------

    def run(self) -> LoadReport:
        if self.budget < 1:
            raise ScenarioError("open-loop run needs ops >= 1")
        self.sched.schedule_at(next(self._arrivals), self._on_arrival)
        self.sched.schedule_at(self.options["sample_every_ms"], self._on_sample)
        self.sched.run()
        self._on_sample(self.sched.now_ms, None)  # final gauge reading
        virtual_ms = max(self._last_completion_ms, self.sched.now_ms)
        config = {
            "users": self.population.size,
            "arrival": self.schedule.to_dict(),
            "zipf": self.zipf.to_dict(),
            "max_lateness_ms": float(self.options["max_lateness_ms"]),
            "service_time_ms": float(self.options["service_time_ms"]),
            "sample_every_ms": float(self.options["sample_every_ms"]),
            "max_shed_fraction": float(self.options["max_shed_fraction"]),
            "ops": self.budget,
        }
        report = LoadReport(
            config=config,
            users=self.population.stats(),
            offered=self._offered,
            admitted=self._ok + self._failed,
            completed_ok=self._ok,
            failed=self._failed,
            shed=self._shed,
            virtual_duration_ms=virtual_ms,
            goodput=goodput_summary(self._offered, self._ok, virtual_ms / 1000.0),
            response=_hist_ms(self._response),
            lateness=_hist_ms(self._lateness),
            stations={
                name: {
                    "channels": len(station.channels),
                    "admitted": station.admitted,
                    "shed": station.shed,
                    "max_queue_depth": station.max_waiting,
                }
                for name, station in sorted(self._stations.items())
            },
            outcomes={
                label: dict(sorted(results.items()))
                for label, results in sorted(self._outcomes.items())
            },
        )
        # the scenario's SLO oracle reads the report during invariants()
        self.state["open_loop_report"] = report
        return report
