"""Open-loop load generation on a virtual-time event scheduler.

The closed-loop harness clients issue their next operation only after
the previous one completed — so the federation is never exposed to an
arrival rate it cannot absorb, and overload behavior (queue growth,
shedding, latency collapse) is structurally unmeasurable.  This package
is the open-loop counterpart:

* :mod:`.schedule` — arrival-rate schedules (constant, Poisson, bursty
  step, diurnal sine) generating seed-deterministic arrival instants;
* :mod:`.popularity` — Zipf-distributed key popularity over servant
  partitions (hot-shard pressure the uniform mixes cannot produce);
* :mod:`.scheduler` — the virtual-time event heap driving the
  federation's :class:`~repro.middleware.clock.SimClock` (no wall-clock
  sleeps, time never goes backwards);
* :mod:`.driver` — the bounded-lateness open-loop driver hosting
  simulated users as array-backed state machines (a million users need
  neither a million threads nor a million sockets) and recording
  *intended* vs *actual* issue time, so coordinated omission is
  measured instead of hidden.
"""

from __future__ import annotations

from .driver import LoadReport, OpenLoopDriver, UserPopulation
from .popularity import ZipfSampler
from .schedule import (
    ArrivalSchedule,
    BurstyStepSchedule,
    ConstantSchedule,
    DiurnalSineSchedule,
    PoissonSchedule,
    parse_arrival,
)
from .scheduler import VirtualTimeScheduler

__all__ = [
    "ArrivalSchedule",
    "ConstantSchedule",
    "PoissonSchedule",
    "BurstyStepSchedule",
    "DiurnalSineSchedule",
    "parse_arrival",
    "ZipfSampler",
    "VirtualTimeScheduler",
    "OpenLoopDriver",
    "UserPopulation",
    "LoadReport",
]
