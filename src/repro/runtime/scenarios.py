"""Built-in load scenarios: one per example application.

A :class:`Scenario` packages everything the harness needs to run a
configured application as a federation workload:

* a PIM builder and an ordered concern plan (the same model-driven
  configuration the examples demonstrate);
* entity setup — instances are created on the node that owns their
  partition key, so naming, routing, and transactions agree;
* a seeded client mix (:meth:`Scenario.pick` draws one operation from a
  per-client RNG, so each client's operation stream is reproducible
  independently of thread interleaving);
* an optional fault campaign (pattern sites — ``"bus.*"`` — applied
  federation-wide);
* invariants checked after the run against the servants' actual state —
  the whole-stack correctness oracle (money conservation, bid
  monotonicity, audit-denial accounting, at-most-once payment).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.witness import named_lock
from repro.deploy.spec import (
    ApplicationSpec,
    ConcernSpec,
    DeploymentSpec,
    FaultCampaignSpec,
    FaultSiteSpec,
    NodeSpec,
    PartitionSpec,
    QoSProfile,
    ReplicationSpec,
    ServantSpec,
    UserSpec,
)
from repro.errors import InvocationTimeout, ReproError, ScenarioError
from repro.middleware.envelope import QoS
from repro.uml import (
    add_attribute,
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    classes_of,
    ensure_primitives,
    new_model,
)

OpThunk = Callable[[], Any]


class AsyncOp:
    """What an asynchronous pick thunk hands back to the harness.

    Wraps the in-flight :class:`~repro.middleware.envelope.ReplyFuture`;
    the harness resolves it within the client's in-flight window and
    only then runs ``on_success`` (scenario bookkeeping such as tallying
    a deposit's delta) and counts the outcome — so client-side oracles
    never credit an operation whose reply reported failure.
    """

    __slots__ = ("future", "on_success", "timeout_ms")

    def __init__(self, future, on_success=None, timeout_ms=None):
        self.future = future
        self.on_success = on_success
        self.timeout_ms = timeout_ms


def attach_late_success(future, action) -> None:
    """Run ``action(decoded_result)`` if/when ``future`` completes well.

    The timed-out-call hook: a delivery may still land after the caller
    gave up, and bookkeeping (e.g. a deposit's tally delta) must follow
    the *actual* outcome.  Goes through ``future.result()`` so the
    outcome is decoded exactly like a normal wait — a bus-level reply
    whose Response carries a wire error counts as failure, never as
    success with a raw Response payload.
    """

    def callback(done):
        try:
            value = done.result(timeout_ms=None)  # already completed
        except Exception:  # noqa: BLE001 - failure: nothing to book
            return
        action(value)

    future.add_done_callback(callback)


class Tally:
    """Thread-safe scratch counters shared by scenario clients."""

    def __init__(self):
        self._lock = named_lock("scenario.tally")
        self.numbers: Dict[str, float] = {}  # guarded_by: _lock
        self.sets: Dict[str, set] = {}  # guarded_by: _lock

    def add(self, key: str, value: float = 1.0) -> None:
        with self._lock:
            self.numbers[key] = self.numbers.get(key, 0.0) + value

    def maximize(self, key: str, value: float) -> None:
        with self._lock:
            if value > self.numbers.get(key, float("-inf")):
                self.numbers[key] = value

    def mark(self, key: str, member: str) -> None:
        with self._lock:
            self.sets.setdefault(key, set()).add(member)

    def number(self, key: str, default: float = 0.0) -> float:
        with self._lock:
            return self.numbers.get(key, default)

    def members(self, key: str) -> set:
        with self._lock:
            return set(self.sets.get(key, set()))


class Scenario:
    """Base scenario: subclasses fill in the model, mix, and invariants."""

    name = "scenario"
    description = ""
    #: (site-pattern, probability) pairs applied when the run enables faults
    fault_campaign: List[Tuple[str, float]] = []
    #: (user, password, roles) provisioned on every node
    users: List[Tuple[str, str, List[str]]] = []
    #: standby copies per partition (> 0 enables replicated failover)
    replica_count: int = 0
    #: replication machinery: "full" write-through or "log" shipping
    #: (append-only partition op log replayed onto the standbys)
    replication_mode: str = "full"
    #: log-mode snapshot+truncate threshold (entries retained)
    replication_snapshot_every: int = 64
    #: default QoS handed to every harness client (None = DEFAULT_QOS);
    #: elastic scenarios set a retry budget so failover re-delivery is
    #: automatic for pre-effect dead-node faults
    client_qos: Optional[QoS] = None

    # -- configuration ---------------------------------------------------------

    def build_pim(self):
        raise NotImplementedError

    def concerns(self) -> List[Tuple[str, Dict[str, Any]]]:
        raise NotImplementedError

    # -- declarative deployment -------------------------------------------------

    def servant_layout(self, config) -> List[PartitionSpec]:
        """The scenario's entities as partition/servant specs.

        Scenarios that implement this get the declarative deployment
        path: :meth:`deployment_spec` assembles a full
        :class:`~repro.deploy.DeploymentSpec` and the harness builds the
        federation through the
        :class:`~repro.deploy.DeploymentCompiler` — ``deploy``/``setup``
        shrink to workload logic.  Legacy scenarios may skip it and keep
        the imperative :meth:`deploy` path.
        """
        raise NotImplementedError

    def application_spec(self) -> ApplicationSpec:
        """The application section: this scenario's PIM + concern plan."""
        return ApplicationSpec(
            name=self.name,
            builder=f"scenario:{self.name}",
            concerns=tuple(
                ConcernSpec(concern=concern, params=dict(params))
                for concern, params in self.concerns()
            ),
        )

    def deployment_spec(self, config) -> Optional[DeploymentSpec]:
        """The declarative deployment of one run (None = legacy path)."""
        try:
            partitions = self.servant_layout(config)
        except NotImplementedError:
            return None
        qos_profiles: List[QoSProfile] = []
        client_qos = None
        if self.client_qos is not None:
            qos_profiles.append(
                QoSProfile(
                    name="client",
                    timeout_ms=self.client_qos.timeout_ms,
                    retries=self.client_qos.retries,
                    oneway=self.client_qos.oneway,
                )
            )
            client_qos = "client"
        return DeploymentSpec(
            name=self.name,
            application=self.application_spec(),
            nodes=tuple(
                NodeSpec(
                    name=f"node-{i}",
                    workers=config.workers if config.concurrent else 0,
                    seed=config.seed * 31 + i,
                )
                for i in range(config.nodes)
            ),
            partitions=tuple(partitions),
            # a standby needs a distinct successor node: a topology
            # smaller than replica_count+1 degrades to what it can hold
            # (the pre-spec runtime behaved the same way — standbys
            # simply had nowhere to land)
            replication=ReplicationSpec(
                count=min(self.replica_count, max(config.nodes - 1, 0)),
                mode=(
                    getattr(config, "replication_mode", None)
                    or self.replication_mode
                ),
                snapshot_every=self.replication_snapshot_every,
            ),
            faults=FaultCampaignSpec(
                sites=tuple(
                    FaultSiteSpec(site=site, probability=probability)
                    for site, probability in self.fault_campaign
                ),
                armed=config.faults,
            ),
            users=tuple(
                UserSpec(name=user, password=password, roles=tuple(roles))
                for user, password, roles in self.users
            ),
            qos_profiles=tuple(qos_profiles),
            client_qos=client_qos,
            sim_latency_ms=config.sim_latency_ms,
            real_latency_ms=config.real_latency_ms,
            delivery_workers=config.delivery_workers,
            seed=config.seed,
            # "inproc" is omitted from the serialized spec, so runs
            # that never select a transport keep their historic digests
            transport=getattr(config, "transport", "inproc"),
        )

    def deploy(self, federation, config) -> None:
        """Refine + weave the application on every node (legacy path —
        spec-declared scenarios are deployed by the compiler instead)."""
        for node in federation.nodes.values():
            node.deploy(self.build_pim(), self.concerns())

    @staticmethod
    def _spec_servants(federation) -> Tuple[Dict[str, Any], List[str]]:
        """(live servants by name, names in declaration order) for every
        servant the deployed spec declared — the common bookkeeping of
        single-servant-type scenarios' ``setup``."""
        servants: Dict[str, Any] = {}
        names: List[str] = []
        for _key, servant_spec in federation.spec.servants():
            servants[servant_spec.name] = federation.servant(servant_spec.name)
            names.append(servant_spec.name)
        return servants, names

    def setup(self, federation, config) -> Dict[str, Any]:
        raise NotImplementedError

    def client_user(self, client_index: int) -> Optional[Tuple[str, str]]:
        """The (user, password) a client authenticates as; None = anonymous."""
        if not self.users:
            return None
        user = self.users[client_index % len(self.users)]
        return user[0], user[1]

    # -- workload ---------------------------------------------------------------

    def pick(self, rng, federation, state, client, client_index):
        """Draw one operation: returns ``(label, thunk)``."""
        raise NotImplementedError

    # -- open-loop driving -------------------------------------------------------

    #: scenario-tuned overrides for the open-loop driver's defaults
    #: (the run's ``open_loop`` block wins over both)
    open_loop_defaults: Dict[str, Any] = {}
    #: True = this scenario only makes sense open-loop (its oracle reads
    #: the load report); the harness rejects closed-loop runs of it
    requires_open_loop = False

    def open_loop_keys(self, state) -> List[str]:
        """Partition keys the Zipf popularity distribution ranges over."""
        raise NotImplementedError

    def open_loop_op(self, rng, federation, state, client, key):
        """Draw one operation against partition ``key``: ``(label, thunk)``.

        The open-loop counterpart of :meth:`pick` — the *driver* chose
        the partition (Zipf popularity), the scenario only chooses what
        to do there.
        """
        raise NotImplementedError

    def churn_plan(self, config) -> List[Tuple[int, str, Callable]]:
        """Membership events for a ``--churn`` run.

        Returns ``(at_op, label, action)`` triples; the harness fires
        ``action(federation, state)`` once ``at_op`` operations have
        been issued (between operations on the sequential driver, from
        a monitor thread on the concurrent one).  Default: no plan —
        ``--churn`` on a scenario without one is a scenario error.
        """
        return []

    @staticmethod
    def _roulette(rng, weighted):
        """Pick from ``[(weight, value), ...]`` with one RNG draw."""
        total = sum(weight for weight, _ in weighted)
        point = rng.random() * total
        acc = 0.0
        for weight, value in weighted:
            acc += weight
            if point < acc:
                return value
        return weighted[-1][1]

    # -- verification -------------------------------------------------------------

    def invariants(self, federation, state) -> List[str]:
        """Violation descriptions; empty = the run kept every invariant."""
        raise NotImplementedError

    def fingerprint(self, federation, state) -> List[str]:
        """Stable lines describing the final servant state (digest input)."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# banking — money conservation under transactional transfers
# ---------------------------------------------------------------------------


class BankingScenario(Scenario):
    name = "banking"
    description = (
        "branch-partitioned accounts; transactional transfers, deposits, "
        "withdrawals; invariant: money is conserved exactly"
    )
    fault_campaign = [
        ("bus.*", 0.02),
        ("txn.prepare", 0.02),
        ("federation.route", 0.01),
    ]
    users = [("alice", "pw", ["teller"])]

    ACCOUNTS_PER_BRANCH = 4
    INITIAL_BALANCE = 1_000.0

    def build_pim(self):
        resource, model = new_model("bank")
        prims = ensure_primitives(model)
        pkg = add_package(model, "accounts")
        account = add_class(pkg, "Account")
        add_attribute(account, "number", prims["String"])
        add_attribute(account, "balance", prims["Real"])
        deposit = add_operation(
            account, "deposit", [("amount", prims["Real"])], return_type=prims["Real"]
        )
        apply_stereotype(
            deposit, "PythonBody", body="self.balance += amount\nreturn self.balance"
        )
        withdraw = add_operation(
            account, "withdraw", [("amount", prims["Real"])], return_type=prims["Real"]
        )
        apply_stereotype(
            withdraw,
            "PythonBody",
            body=(
                "if amount > self.balance:\n"
                "    raise ValueError('insufficient funds')\n"
                "self.balance -= amount\n"
                "return self.balance"
            ),
        )
        balance = add_operation(account, "getBalance", return_type=prims["Real"])
        apply_stereotype(balance, "PythonBody", body="return self.balance")
        bank = add_class(pkg, "Bank")
        transfer = add_operation(
            bank,
            "transfer",
            [("source", None), ("target", None), ("amount", prims["Real"])],
            return_type=prims["Boolean"],
        )
        apply_stereotype(
            transfer,
            "PythonBody",
            body="source.withdraw(amount)\ntarget.deposit(amount)\nreturn True",
        )
        return resource

    def concerns(self):
        return [
            (
                "distribution",
                {"server_classes": ["Account", "Bank"], "registry_prefix": "bank"},
            ),
            (
                "transactions",
                {
                    "transactional_ops": [
                        "Bank.transfer",
                        "Account.withdraw",
                        "Account.deposit",
                    ],
                    "state_classes": ["Account"],
                },
            ),
            (
                "security",
                {
                    "protected_ops": ["Bank.transfer"],
                    "role_grants": {"teller": ["Bank.*"]},
                },
            ),
        ]

    def servant_layout(self, config):
        """One Bank + N Accounts per branch partition; ``getBalance`` is
        the read-only op (its routed calls skip the write-through sync)."""
        partitions = []
        n_branches = max(1, config.nodes * config.entities_per_node)
        for b in range(n_branches):
            key = f"branch-{b}"
            servants = [
                ServantSpec(name=f"{key}/Bank/0", type_name="Bank")
            ]
            for i in range(self.ACCOUNTS_PER_BRANCH):
                name = f"{key}/Account/{i}"
                servants.append(
                    ServantSpec(
                        name=name,
                        type_name="Account",
                        state={"number": name, "balance": self.INITIAL_BALANCE},
                        read_only_ops=("getBalance",),
                    )
                )
            partitions.append(PartitionSpec(key=key, servants=tuple(servants)))
        return partitions

    def setup(self, federation, config):
        """Workload bookkeeping only — servants were materialized by the
        deployment compiler from this scenario's spec."""
        branches = []
        servants: Dict[str, Any] = {}
        initial_total = 0.0
        for partition in federation.spec.partitions:
            accounts = []
            for servant_spec in partition.servants:
                servants[servant_spec.name] = federation.servant(
                    servant_spec.name
                )
                if "/Account/" in servant_spec.name:
                    accounts.append(servant_spec.name)
                    initial_total += servant_spec.state.get("balance", 0.0)
            branches.append(
                {"bank": f"{partition.key}/Bank/0", "accounts": accounts}
            )
        return {
            "config": config,
            "branches": branches,
            "servants": servants,
            "initial_total": initial_total,
            "tally": Tally(),
        }

    #: the synchronous client mix (subclasses override the weights and
    #: may add kinds handled by their _banking_op override)
    MIX = [
        (0.40, "transfer"),
        (0.25, "deposit"),
        (0.25, "withdraw"),
        (0.10, "getBalance"),
    ]

    def pick(self, rng, federation, state, client, client_index):
        branch = rng.choice(state["branches"])
        tally = state["tally"]
        kind = self._roulette(rng, self.MIX)
        return self._banking_op(kind, rng, branch, tally, client)

    def _banking_op(self, kind, rng, branch, tally, client):
        """One synchronous banking operation — shared by the elastic mix."""
        if kind == "transfer":
            source, target = rng.sample(branch["accounts"], 2)
            amount = float(rng.randrange(1, 20))
            source_ref = client.ref(source)
            target_ref = client.ref(target)

            def transfer():
                client.call(branch["bank"], "transfer", source_ref, target_ref, amount)

            return "Bank.transfer", transfer
        if kind == "deposit":
            account = rng.choice(branch["accounts"])
            amount = float(rng.randrange(1, 50))

            def deposit():
                client.call(account, "deposit", amount)
                tally.add("delta", amount)

            return "Account.deposit", deposit
        if kind == "withdraw":
            account = rng.choice(branch["accounts"])
            amount = float(rng.randrange(1, 50))

            def withdraw():
                client.call(account, "withdraw", amount)
                tally.add("delta", -amount)

            return "Account.withdraw", withdraw
        account = rng.choice(branch["accounts"])

        def get_balance():
            client.call(account, "getBalance")

        return "Account.getBalance", get_balance

    def invariants(self, federation, state):
        violations = []
        actual = sum(
            servant.balance
            for name, servant in state["servants"].items()
            if "/Account/" in name
        )
        expected = state["initial_total"] + state["tally"].number("delta")
        if actual != expected:
            violations.append(
                f"money not conserved: expected {expected}, found {actual}"
            )
        for name, servant in state["servants"].items():
            if "/Account/" in name and servant.balance < 0:
                violations.append(f"negative balance on {name}: {servant.balance}")
        return violations

    def fingerprint(self, federation, state):
        return [
            f"{name} balance={servant.balance:.0f}"
            for name, servant in sorted(state["servants"].items())
            if "/Account/" in name
        ]


# ---------------------------------------------------------------------------
# banking_openloop — offered load, bounded lateness, goodput SLO
# ---------------------------------------------------------------------------


class OpenLoopBankingScenario(BankingScenario):
    name = "banking_openloop"
    description = (
        "banking mix offered open-loop on virtual time: Zipf-hot branches, "
        "bounded-lateness admission; oracles: money conserved, every "
        "admitted op within the latency SLO, shed fraction bounded"
    )
    #: open-loop runs measure the service model, not fault recovery —
    #: the campaign stays empty so --faults is an explicit choice
    fault_campaign: List[Tuple[str, float]] = []
    requires_open_loop = True
    open_loop_defaults = {
        "users": 10_000,
        "arrival": "poisson:4000",
        "zipf_s": 1.1,
        "max_lateness_ms": 50.0,
        "service_time_ms": 0.2,
        # under the default (sub-saturation) offered load the admission
        # gate should barely fire; overload runs raise this bound
        "max_shed_fraction": 0.05,
    }

    def open_loop_keys(self, state):
        return [branch["bank"].split("/", 1)[0] for branch in state["branches"]]

    def open_loop_op(self, rng, federation, state, client, key):
        index = state.get("_branch_by_key")
        if index is None:
            index = state["_branch_by_key"] = {
                branch["bank"].split("/", 1)[0]: branch
                for branch in state["branches"]
            }
        kind = self._roulette(rng, self.MIX)
        return self._banking_op(kind, rng, index[key], state["tally"], client)

    def invariants(self, federation, state):
        """Money conservation (inherited) plus the SLO oracle."""
        violations = super().invariants(federation, state)
        report = state.get("open_loop_report")
        if report is None:
            violations.append("open-loop scenario ran without a load report")
            return violations
        limit = report.config["max_shed_fraction"]
        if report.shed_fraction > limit:
            violations.append(
                f"shed fraction {report.shed_fraction:.4f} exceeds "
                f"allowed {limit:.4f}"
            )
        # bounded lateness makes this structural: an admitted op waits at
        # most max_lateness_ms and is served in service_time_ms, so even
        # the slowest admitted response must sit within the SLO
        slo = report.slo_ms
        if report.response["count"] and report.response["max_ms"] > slo + 1e-6:
            violations.append(
                f"admitted response {report.response['max_ms']:.3f} ms "
                f"breaches the {slo:.3f} ms SLO"
            )
        lateness_bound = report.config["max_lateness_ms"]
        if report.lateness["count"] and (
            report.lateness["max_ms"] > lateness_bound + 1e-6
        ):
            violations.append(
                f"admitted lateness {report.lateness['max_ms']:.3f} ms "
                f"exceeds the {lateness_bound:.3f} ms admission bound"
            )
        return violations


def _add_touch_probe(resource):
    """Give Account a ``touch`` op + ``touches`` counter — the delivery
    oracle both the async (at-most-once oneway) and elastic
    (exactly-once under churn) scenarios count against."""
    model = resource.roots[0]
    prims = ensure_primitives(model)
    account = next(c for c in classes_of(model) if c.name == "Account")
    add_attribute(account, "touches", prims["Integer"])
    touch = add_operation(account, "touch", return_type=prims["Integer"])
    apply_stereotype(
        touch, "PythonBody", body="self.touches += 1\nreturn self.touches"
    )
    return resource


# ---------------------------------------------------------------------------
# banking_async — futures, oneways, and pipelined bursts under faults
# ---------------------------------------------------------------------------


class AsyncBankingScenario(BankingScenario):
    name = "banking_async"
    description = (
        "banking client mix issued asynchronously: reply futures with a "
        "retry/timeout QoS, fire-and-forget oneway touches, pipelined "
        "deposit bursts; invariants: money conserved under in-flight "
        "futures, oneway effects at most once"
    )
    #: the timeout/retry fault campaign: transport faults on both layers
    #: (retried by the async QoS budget) plus prepare-phase aborts
    #: (application-level — never retried, rolled back server-side)
    fault_campaign = [
        ("federation.route", 0.02),
        ("bus.*", 0.02),
        ("txn.prepare", 0.02),
    ]

    #: per-call QoS of the asynchronous mix: bounded waiting, transport
    #: faults retried twice before the client sees them
    ASYNC_QOS = QoS(timeout_ms=30_000.0, retries=2)
    #: oneway deliveries never retry — that is what keeps them at-most-once
    ONEWAY_QOS = QoS(oneway=True, retries=0)
    BURST_SIZE = 4

    def build_pim(self):
        return _add_touch_probe(super().build_pim())

    def pick(self, rng, federation, state, client, client_index):
        branch = rng.choice(state["branches"])
        tally = state["tally"]
        kind = self._roulette(
            rng,
            [
                (0.30, "transfer"),
                (0.20, "deposit"),
                (0.20, "withdraw"),
                (0.10, "getBalance"),
                (0.10, "touch"),
                (0.10, "burst"),
            ],
        )
        if kind == "transfer":
            source, target = rng.sample(branch["accounts"], 2)
            amount = float(rng.randrange(1, 20))
            source_ref = client.ref(source)
            target_ref = client.ref(target)

            def transfer():
                return AsyncOp(
                    client.call_async(
                        branch["bank"],
                        "transfer",
                        source_ref,
                        target_ref,
                        amount,
                        qos=self.ASYNC_QOS,
                    )
                )

            return "Bank.transfer", transfer
        if kind == "deposit":
            account = rng.choice(branch["accounts"])
            amount = float(rng.randrange(1, 50))

            def deposit():
                return AsyncOp(
                    client.call_async(account, "deposit", amount, qos=self.ASYNC_QOS),
                    on_success=lambda _value: tally.add("delta", amount),
                )

            return "Account.deposit", deposit
        if kind == "withdraw":
            account = rng.choice(branch["accounts"])
            amount = float(rng.randrange(1, 50))

            def withdraw():
                return AsyncOp(
                    client.call_async(account, "withdraw", amount, qos=self.ASYNC_QOS),
                    on_success=lambda _value: tally.add("delta", -amount),
                )

            return "Account.withdraw", withdraw
        if kind == "touch":
            account = rng.choice(branch["accounts"])

            def touch():
                # attempts are counted client-side *before* the send: the
                # at-most-once oracle is servant touches <= attempts
                tally.add(f"touch_attempts:{account}")
                client.oneway(account, "touch", qos=self.ONEWAY_QOS)

            return "Account.touch", touch
        if kind == "burst":
            accounts = rng.sample(
                branch["accounts"],
                min(self.BURST_SIZE, len(branch["accounts"])),
            )
            amounts = [float(rng.randrange(1, 25)) for _ in accounts]

            def burst():
                # consecutive same-node calls ride one envelope: the whole
                # burst pays a single transport hop
                pipe = client.pipeline(max_batch=self.BURST_SIZE, qos=self.ASYNC_QOS)
                futures = [
                    pipe.call(account, "deposit", amount)
                    for account, amount in zip(accounts, amounts)
                ]
                pipe.flush()
                first_error = None
                for future, amount in zip(futures, amounts):
                    try:
                        future.result(timeout_ms=30_000.0)
                    except InvocationTimeout as exc:
                        # a timed-out member may still land before the
                        # harness quiesces: re-attach the delta so the
                        # money-conservation oracle cannot fire on a
                        # deposit that actually happened
                        attach_late_success(
                            future,
                            lambda _value, amount=amount: tally.add("delta", amount),
                        )
                        if first_error is None:
                            first_error = exc
                    except Exception as exc:  # noqa: BLE001 - re-raised below
                        if first_error is None:
                            first_error = exc
                    else:
                        tally.add("delta", amount)
                if first_error is not None:
                    raise first_error

            return "Account.depositBurst", burst
        account = rng.choice(branch["accounts"])

        def get_balance():
            client.call(account, "getBalance")

        return "Account.getBalance", get_balance

    def invariants(self, federation, state):
        violations = super().invariants(federation, state)
        tally = state["tally"]
        for name, servant in state["servants"].items():
            if "/Account/" not in name:
                continue
            attempts = int(tally.number(f"touch_attempts:{name}"))
            touches = servant.touches
            if touches > attempts:
                violations.append(
                    f"{name}: {touches} oneway effects exceed {attempts} "
                    "attempts (at-most-once broken)"
                )
            if not state["config"].faults and touches != attempts:
                violations.append(
                    f"{name}: {touches} oneway effects != {attempts} attempts "
                    "(fault-free runs must deliver exactly once)"
                )
        return violations

    def fingerprint(self, federation, state):
        return [
            f"{name} balance={servant.balance:.0f} touches={servant.touches}"
            for name, servant in sorted(state["servants"].items())
            if "/Account/" in name
        ]


# ---------------------------------------------------------------------------
# banking_elastic — membership churn: kill + failover, join, retire
# ---------------------------------------------------------------------------


class ElasticBankingScenario(BankingScenario):
    name = "banking_elastic"
    description = (
        "banking mix under membership churn: a node is killed mid-run "
        "(replicated standbys promoted, pre-effect calls retried), a new "
        "node joins (only its rehashed shard migrates), a node retires "
        "gracefully; invariants: money conserved, touch effects exactly "
        "once per success, every name still resolvable"
    )
    #: churn is the fault model here; the optional --faults campaign adds
    #: transport noise on top (retried under the same client QoS budget)
    fault_campaign = [("federation.route", 0.01)]
    users = [("alice", "pw", ["teller"])]
    #: one standby per partition — enough to survive one crash at a time
    replica_count = 1
    #: ship per-servant deltas through the partition op log instead of
    #: write-through copies — the churn/kill oracles below (money
    #: conserved, exactly-once touch) therefore exercise log replay,
    #: truncation, and log-riding failover promotion on every run
    replication_mode = "log"
    replication_snapshot_every = 32
    #: the retry budget that makes failover transparent for pre-effect
    #: faults; application errors are still never retried
    client_qos = QoS(timeout_ms=30_000.0, retries=2)

    JOINED_NODE = "node-elastic"

    #: the banking mix plus the exactly-once probe: every *successful*
    #: synchronous touch must leave exactly one increment — a failover
    #: retry that duplicated an effect, or a migration that lost one,
    #: both break the equality
    MIX = [
        (0.35, "transfer"),
        (0.20, "deposit"),
        (0.20, "withdraw"),
        (0.15, "touch"),
        (0.10, "getBalance"),
    ]

    def build_pim(self):
        return _add_touch_probe(super().build_pim())

    # -- deployment -------------------------------------------------------------
    #
    # The compiler ships the vendor lifecycle once and replays the
    # package per node for *every* spec-declared scenario; the elastic
    # scenario only needs the joiner hook below to replay that same
    # artifact on a node joining mid-run — migration ships servant state
    # (ShardManifest), the package ships the code to host it.

    @staticmethod
    def deploy_node(federation, node) -> None:
        """Replay the federation's shipped package onto one node."""
        from repro.deploy.compiler import DeploymentCompiler

        DeploymentCompiler.deploy_node(federation, node)

    # -- the churn campaign ---------------------------------------------------

    def churn_plan(self, config):
        if config.nodes < 2:
            raise ScenarioError(
                "banking_elastic churn needs >= 2 nodes (failover must "
                "have somewhere to promote to)"
            )
        quarter = max(1, config.ops // 4)
        victim = f"node-{config.nodes - 1}"

        def kill(federation, state):
            federation.kill(victim)

        def join(federation, state):
            run_config = state["config"]
            federation.join(
                self.JOINED_NODE,
                workers=run_config.workers if run_config.concurrent else 0,
                seed=run_config.seed * 31 + 97,
                deploy=lambda node: self.deploy_node(federation, node),
            )

        def retire(federation, state):
            federation.retire("node-0")

        return [
            (quarter, f"kill {victim}", kill),
            (2 * quarter, f"join {self.JOINED_NODE}", join),
            (3 * quarter, "retire node-0", retire),
        ]

    # -- workload --------------------------------------------------------------

    def _banking_op(self, kind, rng, branch, tally, client):
        if kind == "touch":
            account = rng.choice(branch["accounts"])

            def touch():
                # synchronous: a success IS one effect — counted only
                # after the call returned, so touches == successes holds
                # even when a pre-effect fault consumed retry attempts
                client.call(account, "touch")
                tally.add(f"touch_ok:{account}")

            return "Account.touch", touch
        return super()._banking_op(kind, rng, branch, tally, client)

    # -- oracles: judged against the LIVE servants ------------------------------

    def _live_servants(self, federation, state):
        """(name, servant) via current routing — setup-time references go
        stale the moment a shard migrates or fails over."""
        pairs = []
        for branch in state["branches"]:
            for name in [branch["bank"], *branch["accounts"]]:
                pairs.append((name, federation.servant(name)))
        return pairs

    def invariants(self, federation, state):
        violations = []
        # settle membership first: a node killed late in the run may not
        # have been promoted yet (no traffic hit its shard afterwards)
        federation.reconcile()
        tally = state["tally"]
        total = 0.0
        try:
            live = self._live_servants(federation, state)
        except ReproError as exc:
            return [f"binding lost after churn: {exc}"]
        for name, servant in live:
            if "/Account/" not in name:
                continue
            total += servant.balance
            if servant.balance < 0:
                violations.append(f"negative balance on {name}: {servant.balance}")
            successes = int(tally.number(f"touch_ok:{name}"))
            if servant.touches != successes:
                violations.append(
                    f"{name}: {servant.touches} touch effects != "
                    f"{successes} successful touches (exactly-once broken "
                    "by churn)"
                )
        expected = state["initial_total"] + tally.number("delta")
        if total != expected:
            violations.append(
                f"money not conserved under churn: expected {expected}, "
                f"found {total}"
            )
        return violations

    def fingerprint(self, federation, state):
        return [
            f"{name} balance={servant.balance:.0f} touches={servant.touches}"
            for name, servant in sorted(self._live_servants(federation, state))
            if "/Account/" in name
        ]


# ---------------------------------------------------------------------------
# auction — serialized bidding, monotonic highest bid
# ---------------------------------------------------------------------------


class AuctionScenario(Scenario):
    name = "auction"
    description = (
        "item-partitioned auctions; concurrent bidding serialized per "
        "servant; invariant: final highest bid == max accepted bid"
    )
    fault_campaign = [("bus.*", 0.03)]
    users: List[Tuple[str, str, List[str]]] = []

    def build_pim(self):
        resource, model = new_model("auction")
        prims = ensure_primitives(model)
        pkg = add_package(model, "market")
        auction = add_class(pkg, "Auction")
        add_attribute(auction, "item", prims["String"])
        add_attribute(auction, "highestBid", prims["Real"])
        add_attribute(auction, "highestBidder", prims["String"])
        bid = add_operation(
            auction,
            "bid",
            [("who", prims["String"]), ("amount", prims["Real"])],
            return_type=prims["Boolean"],
        )
        apply_stereotype(
            bid,
            "PythonBody",
            body=(
                "if amount <= self.highestBid:\n"
                "    return False\n"
                "self.highestBid = amount\n"
                "self.highestBidder = who\n"
                "return True"
            ),
        )
        status = add_operation(auction, "status", return_type=prims["Real"])
        apply_stereotype(status, "PythonBody", body="return self.highestBid")
        return resource

    def concerns(self):
        return [
            (
                "distribution",
                {"server_classes": ["Auction"], "registry_prefix": "market"},
            ),
            ("logging", {"log_patterns": ["Auction.bid"]}),
        ]

    def servant_layout(self, config):
        partitions = []
        n_items = max(1, config.nodes * config.entities_per_node)
        for k in range(n_items):
            key = f"item-{k}"
            partitions.append(
                PartitionSpec(
                    key=key,
                    servants=(
                        ServantSpec(
                            name=f"{key}/Auction/0",
                            type_name="Auction",
                            state={
                                "item": key,
                                "highestBid": 0.0,
                                "highestBidder": "",
                            },
                            read_only_ops=("status",),
                        ),
                    ),
                )
            )
        return partitions

    def setup(self, federation, config):
        servants, items = self._spec_servants(federation)
        return {
            "config": config,
            "items": items,
            "servants": servants,
            "tally": Tally(),
        }

    def pick(self, rng, federation, state, client, client_index):
        item = rng.choice(state["items"])
        tally = state["tally"]
        kind = self._roulette(rng, [(0.7, "bid"), (0.3, "status")])
        if kind == "bid":
            amount = float(rng.randrange(1, 10_000))
            who = f"client-{client_index}"

            def bid():
                if client.call(item, "bid", who, amount):
                    tally.maximize(f"best:{item}", amount)

            return "Auction.bid", bid

        def status():
            client.call(item, "status")

        return "Auction.status", status

    def invariants(self, federation, state):
        violations = []
        for name in state["items"]:
            servant = state["servants"][name]
            best = state["tally"].number(f"best:{name}", 0.0)
            if servant.highestBid != best:
                violations.append(
                    f"{name}: highestBid {servant.highestBid} != "
                    f"max accepted bid {best}"
                )
        return violations

    def fingerprint(self, federation, state):
        return [
            f"{name} bid={servant.highestBid:.0f} by={servant.highestBidder}"
            for name, servant in sorted(state["servants"].items())
        ]


# ---------------------------------------------------------------------------
# medical_records — role-based access, audit accounting
# ---------------------------------------------------------------------------


class MedicalRecordsScenario(Scenario):
    name = "medical_records"
    description = (
        "patient-partitioned records; doctors update, nurses read-only; "
        "invariant: revisions == successful updates, denials all audited"
    )
    fault_campaign = [("txn.prepare", 0.08)]
    users = [("dr_ada", "pw", ["doctor"]), ("nina", "pw", ["nurse"])]

    def build_pim(self):
        resource, model = new_model("clinic")
        prims = ensure_primitives(model)
        pkg = add_package(model, "records")
        record = add_class(pkg, "PatientRecord")
        add_attribute(record, "patientId", prims["String"])
        add_attribute(record, "diagnosis", prims["String"])
        add_attribute(record, "revision", prims["Integer"])
        read = add_operation(record, "read", return_type=prims["String"])
        apply_stereotype(read, "PythonBody", body="return self.diagnosis")
        update = add_operation(
            record, "update", [("text", prims["String"])], return_type=prims["Integer"]
        )
        apply_stereotype(
            update,
            "PythonBody",
            body=(
                "if text == '':\n"
                "    raise ValueError('empty diagnosis')\n"
                "self.diagnosis = text\n"
                "self.revision += 1\n"
                "return self.revision"
            ),
        )
        return resource

    def concerns(self):
        return [
            (
                "distribution",
                {"server_classes": ["PatientRecord"], "registry_prefix": "clinic"},
            ),
            (
                "transactions",
                {
                    "transactional_ops": ["PatientRecord.update"],
                    "state_classes": ["PatientRecord"],
                },
            ),
            (
                "security",
                {
                    "protected_ops": ["PatientRecord.read", "PatientRecord.update"],
                    "role_grants": {
                        "doctor": ["PatientRecord.*"],
                        "nurse": ["PatientRecord.read"],
                    },
                },
            ),
        ]

    def client_user(self, client_index):
        user = self.users[client_index % 2]
        return user[0], user[1]

    def _is_doctor(self, client_index):
        return client_index % 2 == 0

    def servant_layout(self, config):
        partitions = []
        n_records = max(1, config.nodes * config.entities_per_node)
        for k in range(n_records):
            key = f"patient-{k}"
            partitions.append(
                PartitionSpec(
                    key=key,
                    servants=(
                        ServantSpec(
                            name=f"{key}/PatientRecord/0",
                            type_name="PatientRecord",
                            state={
                                "patientId": key,
                                "diagnosis": "healthy",
                                "revision": 0,
                            },
                            read_only_ops=("read",),
                        ),
                    ),
                )
            )
        return partitions

    def setup(self, federation, config):
        servants, records = self._spec_servants(federation)
        return {
            "config": config,
            "records": records,
            "servants": servants,
            "tally": Tally(),
        }

    def pick(self, rng, federation, state, client, client_index):
        record = rng.choice(state["records"])
        tally = state["tally"]
        if self._is_doctor(client_index):
            kind = self._roulette(
                rng, [(0.40, "read"), (0.55, "update"), (0.05, "empty-update")]
            )
            if kind == "read":

                def read():
                    client.call(record, "read")

                return "PatientRecord.read", read
            if kind == "update":
                text = f"dx-{rng.randrange(1, 10_000)}"

                def update():
                    client.call(record, "update", text)
                    tally.add(f"updates:{record}")

                return "PatientRecord.update", update

            def empty_update():
                client.call(record, "update", "")

            return "PatientRecord.update", empty_update
        # nurses: mostly reads, plus update attempts that must be denied
        kind = self._roulette(rng, [(0.7, "read"), (0.3, "update")])
        if kind == "read":

            def read():
                client.call(record, "read")

            return "PatientRecord.read", read

        def denied_update():
            tally.add("nurse_update_attempts")
            client.call(record, "update", "nurse-note")

        return "PatientRecord.update", denied_update

    def invariants(self, federation, state):
        violations = []
        for name in state["records"]:
            servant = state["servants"][name]
            expected = int(state["tally"].number(f"updates:{name}"))
            if servant.revision != expected:
                violations.append(
                    f"{name}: revision {servant.revision} != "
                    f"successful updates {expected}"
                )
        denials = sum(
            len(node.services.audit.denials())
            for node in federation.nodes.values()
        )
        attempts = int(state["tally"].number("nurse_update_attempts"))
        if state["config"].faults:
            # a faulted request may die before the access check: the
            # audit trail can only under-count scripted attempts
            if denials > attempts:
                violations.append(
                    f"denials {denials} exceed nurse update attempts {attempts}"
                )
        elif denials != attempts:
            violations.append(
                f"audit denials {denials} != nurse update attempts {attempts}"
            )
        return violations

    def fingerprint(self, federation, state):
        return [
            f"{name} rev={servant.revision} dx={servant.diagnosis}"
            for name, servant in sorted(state["servants"].items())
        ]


# ---------------------------------------------------------------------------
# component_shipping — ship once, replay on every node, pay at most once
# ---------------------------------------------------------------------------


class ComponentShippingScenario(Scenario):
    name = "component_shipping"
    description = (
        "a vendor lifecycle is shipped as a component package and replayed "
        "on every node; invariant: each order is paid at most once"
    )
    fault_campaign = [("txn.prepare", 0.05)]
    users = [("carol", "pw", ["cashier"])]

    ORDER_TOTAL = 25.0

    def build_pim(self):
        resource, model = new_model("orders")
        prims = ensure_primitives(model)
        pkg = add_package(model, "shop")
        order = add_class(pkg, "Order")
        add_attribute(order, "total", prims["Real"])
        add_attribute(order, "paid", prims["Boolean"])
        pay = add_operation(
            order, "pay", [("amount", prims["Real"])], return_type=prims["Boolean"]
        )
        apply_stereotype(
            pay,
            "PythonBody",
            body=(
                "if self.paid:\n"
                "    raise ValueError('already paid')\n"
                "if amount < self.total:\n"
                "    raise ValueError('partial payment refused')\n"
                "self.paid = True\n"
                "return True"
            ),
        )
        is_paid = add_operation(order, "isPaid", return_type=prims["Boolean"])
        apply_stereotype(is_paid, "PythonBody", body="return self.paid")
        return resource

    def concerns(self):
        return [
            (
                "transactions",
                {"transactional_ops": ["Order.pay"], "state_classes": ["Order"]},
            ),
            (
                "security",
                {
                    "protected_ops": ["Order.pay"],
                    "role_grants": {"cashier": ["Order.*"]},
                },
            ),
        ]

    # the ship-once/replay-per-node deployment this scenario used to
    # hand-code is now the compiler's standard path for every spec

    def servant_layout(self, config):
        partitions = []
        n_orders = max(1, config.nodes * config.entities_per_node * 3)
        for k in range(n_orders):
            key = f"order-{k}"
            partitions.append(
                PartitionSpec(
                    key=key,
                    servants=(
                        ServantSpec(
                            name=f"{key}/Order/0",
                            type_name="Order",
                            state={"total": self.ORDER_TOTAL, "paid": False},
                            read_only_ops=("isPaid",),
                        ),
                    ),
                )
            )
        return partitions

    def setup(self, federation, config):
        servants, orders = self._spec_servants(federation)
        return {
            "config": config,
            "orders": orders,
            "servants": servants,
            "tally": Tally(),
        }

    def pick(self, rng, federation, state, client, client_index):
        order = rng.choice(state["orders"])
        tally = state["tally"]
        kind = self._roulette(rng, [(0.5, "pay"), (0.5, "isPaid")])
        if kind == "pay":

            def pay():
                client.call(order, "pay", self.ORDER_TOTAL)
                tally.mark("paid", order)
                tally.add(f"pays:{order}")

            return "Order.pay", pay

        def is_paid():
            client.call(order, "isPaid")

        return "Order.isPaid", is_paid

    def invariants(self, federation, state):
        violations = []
        paid_set = state["tally"].members("paid")
        for name in state["orders"]:
            servant = state["servants"][name]
            if servant.paid != (name in paid_set):
                violations.append(
                    f"{name}: paid flag {servant.paid} disagrees with "
                    f"client-observed payments"
                )
            pays = int(state["tally"].number(f"pays:{name}"))
            if pays > 1:
                violations.append(f"{name}: paid {pays} times (at most once allowed)")
        return violations

    def fingerprint(self, federation, state):
        return [
            f"{name} paid={servant.paid}"
            for name, servant in sorted(state["servants"].items())
        ]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

SCENARIOS: Dict[str, Scenario] = {
    spec.name: spec
    for spec in (
        BankingScenario(),
        OpenLoopBankingScenario(),
        AsyncBankingScenario(),
        ElasticBankingScenario(),
        AuctionScenario(),
        MedicalRecordsScenario(),
        ComponentShippingScenario(),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ScenarioError(f"unknown scenario {name!r} (known: {known})") from None
