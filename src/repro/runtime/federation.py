"""Multi-node ORB federation: consistent-hash sharding and request routing.

The federation is the inter-node fabric:

* :class:`HashRing` — consistent hashing with virtual nodes; adding or
  removing a node only remaps the keys that land on its ring segments.
* :class:`ShardedNamingService` — the paper-level naming service scaled
  out: names are partitioned by their first path segment over per-shard
  :class:`~repro.middleware.naming.NamingService` instances (each node's
  local naming service is its shard), so resolution is one hash plus one
  local lookup, with no global table.
* :class:`Federation` — node registry plus the routed invocation path.
  Every hop is an :class:`~repro.middleware.envelope.Envelope` running
  through one ordered interceptor chain (metrics → fault injection →
  latency → routing statistics → the owner node's dispatcher) over a
  pluggable transport: in-process synchronous for classic blocking
  calls, queued-asynchronous (delivery threads) for futures, oneways,
  and pipelined batches.
* :class:`InvocationPipeline` — client-side batching: consecutive calls
  to the same node travel as one envelope, so a latency-bound client
  pays one transport hop per batch instead of per call.
* :class:`FederationClient` — a caller identity: resolves names anywhere
  in the federation and attaches per-node credentials to each request,
  in all four invocation styles (sync, async future, oneway, pipeline).

Elastic membership (live topology changes):

* :meth:`Federation.join` / :meth:`Federation.retire` rehash the ring and
  migrate **only the affected bindings**: each moving partition is frozen
  (in-flight envelopes quiesce behind a :class:`_MigrationGate`), its
  servant state ships as a :class:`ShardManifest` (the shard-level
  analogue of :class:`~repro.core.shipping.ComponentPackage` — the
  application itself travels as a shipped package and is replayed on the
  joining node), and the :class:`ShardedNamingService` performs an atomic
  ownership-epoch swap, so routing never observes a half-migrated shard.
* :class:`ReplicaManager` keeps, per partition key, a primary plus N
  standby servant copies on the ring-successor nodes (write-through after
  every successful routed call).  :meth:`Federation.kill` models a
  fail-stop crash (in-flight requests finish, then the node goes dark);
  the ``failover`` interceptor element reacts to the resulting
  :class:`~repro.errors.NodeDownError` by promoting the standbys of the
  dead node's partitions, and the transport's QoS retry budget re-delivers
  the pre-effect call — re-resolving ``envelope.binding`` — onto the new
  primary.
"""

from __future__ import annotations

import bisect
import contextlib
import fnmatch
import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.witness import named_condition, named_lock, named_rlock
from repro.errors import FederationError, NamingError, NodeDownError, ReproError
from repro.middleware.bus import ObjectRefData, Request, marshal
from repro.middleware.clock import SimClock
from repro.middleware.envelope import (
    DEFAULT_QOS,
    ONEWAY_QOS,
    Envelope,
    InterceptorChain,
    QoS,
    ReplyFuture,
    current_delivery_context,
)
from repro.middleware.faults import FaultInjector
from repro.middleware.naming import NamingService
from repro.middleware.transport import (
    InProcessTransport,
    LazyQueuedTransport,
    QueuedTransport,
    in_serving_thread,
)
from repro.middleware.rpc import RemoteProxy
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.node import Node
from repro.runtime.observability import TRACE_KEY, Observability


class HashRing:
    """Consistent-hash ring with virtual nodes."""

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise FederationError(f"ring needs >= 1 replica, got {replicas}")
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        self._members: List[str] = []

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.md5(value.encode("utf-8")).digest()[:8], "big"
        )

    @property
    def members(self) -> List[str]:
        return list(self._members)

    def add(self, name: str) -> None:
        if name in self._members:
            raise FederationError(f"ring member {name!r} already present")
        self._members.append(name)
        for i in range(self.replicas):
            point = self._hash(f"{name}#{i}")
            # md5 collisions across member names are not expected; keep
            # first owner on the astronomically unlikely tie
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = name
        self._members.sort()

    def remove(self, name: str) -> None:
        if name not in self._members:
            raise FederationError(f"ring member {name!r} not present")
        self._members.remove(name)
        for i in range(self.replicas):
            point = self._hash(f"{name}#{i}")
            if self._owners.get(point) == name:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def owner(self, key: str) -> str:
        """The member owning ``key`` (clockwise successor on the ring)."""
        if not self._points:
            raise FederationError("hash ring is empty")
        point = self._hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def preference(self, key: str, count: int) -> List[str]:
        """The first ``count`` distinct members clockwise from ``key``.

        The owner comes first; the members that follow are the natural
        standby order for replica placement — when the owner leaves the
        ring, ownership of ``key`` falls to ``preference(key, 2)[1]``.
        """
        if not self._points:
            raise FederationError("hash ring is empty")
        point = self._hash(key)
        index = bisect.bisect_right(self._points, point)
        result: List[str] = []
        total = len(self._points)
        for i in range(total):
            owner = self._owners[self._points[(index + i) % total]]
            if owner not in result:
                result.append(owner)
                if len(result) >= count:
                    break
        return result


class _Topology:
    """One immutable ownership snapshot: ring + shard stores + epoch.

    Readers take the whole snapshot in a single attribute read, so a
    concurrent topology swap can never be observed half-applied (ring
    says one owner, shard table says another).
    """

    __slots__ = ("ring", "shards", "epoch")

    def __init__(self, ring: HashRing, shards: Dict[str, NamingService], epoch: int):
        self.ring = ring
        self.shards = shards
        self.epoch = epoch


class ShardedNamingService:
    """Consistent-hash shards over plain :class:`NamingService` stores.

    The partition key of a name is its first path segment
    (``branch-3/Account/7`` → ``branch-3``), so all names below one
    partition co-locate on one shard — the property single-shard
    transactions rely on.

    Topology changes (``add_shard``/``remove_shard``) are **atomic
    ownership-epoch swaps**: a fresh ring and shard table are built off
    to the side and published in one reference assignment, bumping
    :attr:`epoch`.  Lookups pin one snapshot for their whole
    resolve-owner-then-read-shard sequence, so routing never sees a
    half-migrated shard even while a migration rebinds names.
    """

    def __init__(self, replicas: int = 64):
        self._replicas = replicas
        self._topology = _Topology(HashRing(replicas), {}, 0)  # guarded_by: _swap_lock
        self._swap_lock = named_lock("naming.swap")

    # -- topology -----------------------------------------------------------

    @property
    def ring(self) -> HashRing:
        """The current ring snapshot (stable for the returned object)."""
        return self._topology.ring

    @property
    def epoch(self) -> int:
        """Bumped once per committed topology swap."""
        return self._topology.epoch

    def preview_ring(
        self, add: Optional[str] = None, drop: Optional[str] = None
    ) -> HashRing:
        """The ring as it *would* look after a membership change —
        migrations use it to compute which partitions move before any
        ownership actually changes."""
        members = [m for m in self._topology.ring.members if m != drop]
        if add is not None:
            members.append(add)
        ring = HashRing(self._replicas)
        for member in members:
            ring.add(member)
        return ring

    def add_shard(
        self, shard_name: str, naming: Optional[NamingService] = None
    ) -> NamingService:
        with self._swap_lock:
            topology = self._topology
            if shard_name in topology.shards:
                raise FederationError(f"shard {shard_name!r} already exists")
            store = naming or NamingService()
            shards = dict(topology.shards)
            shards[shard_name] = store
            self._commit(self.preview_ring(add=shard_name), shards)
            return store

    def remove_shard(self, shard_name: str) -> NamingService:
        """Drop a shard in one epoch swap; returns the detached store."""
        with self._swap_lock:
            topology = self._topology
            if shard_name not in topology.shards:
                raise FederationError(f"unknown shard {shard_name!r}")
            shards = dict(topology.shards)
            store = shards.pop(shard_name)
            self._commit(self.preview_ring(drop=shard_name), shards)
            return store

    def _commit(self, ring: HashRing, shards: Dict[str, NamingService]) -> None:
        self._topology = _Topology(ring, shards, self._topology.epoch + 1)

    @property
    def shard_names(self) -> List[str]:
        return sorted(self._topology.shards)

    @staticmethod
    def partition_key(name: str) -> str:
        if not name or not isinstance(name, str):
            raise NamingError(f"invalid name {name!r}")
        for part in name.split("/"):
            if part:
                return part
        raise NamingError(f"invalid name {name!r}")

    def owner_of(self, name: str) -> str:
        return self._topology.ring.owner(self.partition_key(name))

    def resolve_with_owner(self, name: str) -> Tuple[str, ObjectRefData]:
        """Resolve against ONE topology snapshot: (owner shard, ref)."""
        topology = self._topology
        owner = topology.ring.owner(self.partition_key(name))
        return owner, topology.shards[owner].resolve(name)

    def partition_view(self, partition: str) -> Optional[Tuple[str, List[str]]]:
        """One partition's (owner, bound names) from ONE snapshot — or
        None while a membership change is swapping the shard away
        (callers like the replica sync treat that as 'try again later')."""
        topology = self._topology
        if not topology.shards:
            return None
        owner = topology.ring.owner(partition)
        store = topology.shards.get(owner)
        if store is None:
            return None
        return owner, store.list(partition)

    def shard_for(self, name: str) -> NamingService:
        topology = self._topology
        return topology.shards[topology.ring.owner(self.partition_key(name))]

    def shard(self, shard_name: str) -> NamingService:
        try:
            return self._topology.shards[shard_name]
        except KeyError:
            raise FederationError(f"unknown shard {shard_name!r}") from None

    # -- naming operations -----------------------------------------------------

    def bind(self, name: str, ref: ObjectRefData) -> None:
        self.shard_for(name).bind(name, ref)

    def rebind(self, name: str, ref: ObjectRefData) -> None:
        self.shard_for(name).rebind(name, ref)

    def resolve(self, name: str) -> ObjectRefData:
        return self.shard_for(name).resolve(name)

    def unbind(self, name: str) -> None:
        self.shard_for(name).unbind(name)

    def list(self, prefix: str = "") -> List[str]:
        names: List[str] = []
        for shard in self._topology.shards.values():
            names.extend(shard.list(prefix))
        return sorted(names)

    def stats(self) -> Dict[str, int]:
        """Bindings per shard — the shard-balance view."""
        return {
            name: len(shard.list())
            for name, shard in sorted(self._topology.shards.items())
        }


@dataclass
class ShardManifest:
    """The transfer unit of a shard migration — servant state in transit.

    The shard-level analogue of
    :class:`~repro.core.shipping.ComponentPackage`: where the package
    ships the *application* (model + refinement steps, replayed on the
    receiving node), the manifest ships one partition's *servant state*
    — ``(name, type name, attribute dict)`` per binding.  The receiving
    node reconstructs each servant from its own woven module class, so
    migrated servants are instrumented by the receiver's aspects exactly
    like locally created ones.  ``to_dict`` is JSON-shaped for the same
    reason the package is: a migration is auditable, not opaque.
    """

    partition: str
    source: str
    entries: List[Tuple[str, str, Dict[str, Any]]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro-shard-manifest/1",
            "partition": self.partition,
            "source": self.source,
            "entries": [
                {"name": name, "type": type_name, "state": dict(state)}
                for name, type_name, state in self.entries
            ],
        }


class _MigrationGate:
    """Quiesces in-flight envelopes on a moving shard.

    Routed deliveries ``enter`` their target partition for the duration
    of the hop; a migration ``freeze``\\ s the moving partitions, which
    (a) blocks *new* deliveries to them and (b) waits until every
    already-entered delivery has drained — so servant state is copied
    only while nothing executes against it, and resolution of the moving
    names resumes only after the ownership epoch swap.

    Re-entrancy rule: a thread that already holds an entry for a
    partition re-enters it without blocking on the frozen set — the
    freeze discounts its entries and waits for it, so blocking it would
    invert the wait (a servant's nested call back into its own frozen
    partition must pass).  A nested call into a *different* frozen
    partition waits for the unfreeze like any new delivery; the freeze
    timeout is the backstop for workloads that nest across two
    partitions frozen by the same migration.
    """

    def __init__(self, observer=None):
        self._cond = named_condition("federation.gate")
        self._frozen: set = set()  # guarded_by: _cond
        self._inflight: Dict[str, int] = {}  # guarded_by: _cond
        self._local = threading.local()
        #: callable(partitions, waited_ms) — notified when a delivery
        #: had to block on a frozen partition (observability event)
        self._observer = observer

    def _held(self) -> Dict[str, int]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = {}
        return held

    def _enter(self, partitions: List[str]) -> None:
        """Enter several partitions atomically.

        Waits until none of the *non-held* wanted partitions is frozen,
        then takes every entry at once.  Partitions this thread already
        holds are exempt from the wait (the freeze is waiting for those
        entries; blocking on them would invert the wait), but a frozen
        partition the thread does NOT hold always blocks — a nested or
        batched delivery must never slip into a shard mid-export.  The
        residual cross-wait (thread holds frozen A, wants frozen B) ends
        at the freeze timeout: the migration fails cleanly rather than
        the shard migrating with a torn snapshot.
        """
        held = self._held()
        waited_at = None
        with self._cond:
            while any(
                p in self._frozen and p not in held for p in partitions
            ):
                if waited_at is None:
                    waited_at = time.perf_counter()
                if not self._cond.wait(timeout=30.0):
                    raise FederationError(
                        "partition(s) stayed frozen for 30s: "
                        f"{sorted(self._frozen & set(partitions))}"
                    )
            for partition in partitions:
                self._inflight[partition] = self._inflight.get(partition, 0) + 1
        for partition in partitions:
            held[partition] = held.get(partition, 0) + 1
        if waited_at is not None and self._observer is not None:
            self._observer(partitions, (time.perf_counter() - waited_at) * 1000.0)

    def _exit(self, partitions: List[str]) -> None:
        held = self._held()
        for partition in partitions:
            held[partition] -= 1
            if not held[partition]:
                del held[partition]
        with self._cond:
            for partition in partitions:
                self._inflight[partition] -= 1
                if not self._inflight[partition]:
                    del self._inflight[partition]
            self._cond.notify_all()

    @contextlib.contextmanager
    def entered(self, partition: str):
        self._enter([partition])
        try:
            yield
        finally:
            self._exit([partition])

    @contextlib.contextmanager
    def entered_many(self, partitions: Iterable[str]):
        parts = sorted(set(partitions))
        self._enter(parts)
        try:
            yield
        finally:
            self._exit(parts)

    @contextlib.contextmanager
    def freeze(self, partitions: Iterable[str], timeout_s: float = 30.0):
        frozen = set(partitions)
        held = self._held()

        def drained() -> bool:
            return all(
                self._inflight.get(p, 0) <= held.get(p, 0) for p in frozen
            )

        with self._cond:
            self._frozen |= frozen
            if not self._cond.wait_for(drained, timeout_s):
                self._frozen -= frozen
                self._cond.notify_all()
                raise FederationError(
                    "in-flight requests on the moving shard did not "
                    f"quiesce within {timeout_s}s"
                )
        try:
            yield
        finally:
            with self._cond:
                self._frozen -= frozen
                self._cond.notify_all()


class ReplicaGroup:
    """One partition's replication view: primary + standby servant copies."""

    __slots__ = ("partition", "primary", "standbys", "watermarks")

    def __init__(self, partition: str, primary: str, standby_names: List[str]):
        self.partition = partition
        self.primary = primary
        #: standby node name -> {binding name -> servant copy}
        self.standbys: Dict[str, Dict[str, Any]] = {
            name: {} for name in standby_names
        }
        #: standby node name -> applied log sequence (log mode): the
        #: watermark up to which that standby's copies have replayed the
        #: partition's :class:`ReplicationLog`; replica lag is the
        #: distance between the log head and the smallest watermark
        self.watermarks: Dict[str, int] = {name: 0 for name in standby_names}


class ReplicationLog:
    """Append-only, monotonically sequenced op log for one partition.

    Every mutating call appends one entry per touched servant carrying
    that servant's post-call state delta ``(seq, name, type_name,
    state)``.  Standbys *replay* the tail past their applied watermark
    instead of re-copying the partition.  Periodically the tail is
    folded into a base snapshot (``base``/``base_seq``) and truncated,
    bounding memory; a standby whose watermark predates ``base_seq``
    reseeds from the snapshot and replays the remaining tail — the same
    path serves steady-state catch-up, join-time seeding, and failover
    promotion.
    """

    __slots__ = (
        "partition", "seq", "base_seq", "base", "entries",
        "appends", "truncations",
    )

    def __init__(self, partition: str):
        self.partition = partition
        #: sequence of the newest entry ever appended (monotonic)
        self.seq = 0
        #: every entry with seq <= base_seq has been folded into base
        self.base_seq = 0
        #: binding name -> (type name, state) as of base_seq
        self.base: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        #: untruncated tail: [(seq, name, type name, state)], seq > base_seq
        self.entries: List[Tuple[int, str, str, Dict[str, Any]]] = []
        self.appends = 0
        self.truncations = 0

    def append(self, name: str, type_name: str, state: Dict[str, Any]) -> int:
        self.seq += 1
        self.appends += 1
        self.entries.append((self.seq, name, type_name, state))
        return self.seq

    def snapshot(self) -> None:
        """Fold the tail into the base snapshot and truncate the log."""
        for _seq, name, type_name, state in self.entries:
            self.base[name] = (type_name, state)
        self.base_seq = self.seq
        self.entries = []
        self.truncations += 1

    def prune(self, live_names) -> None:
        """Drop base entries for names no longer bound in the partition."""
        for name in list(self.base):
            if name not in live_names:
                del self.base[name]


class ReplicaManager:
    """Per-partition primary + N standby servant copies (failover state).

    Standbys are the partition's ring successors, so when the primary
    leaves the ring the new hash owner *is* the first standby — the node
    already holding current state.  Copies are instances of the standby
    node's own woven module classes; each servant's attribute dict is
    snapshot under that servant's dispatch lock (so a single snapshot is
    never torn by a concurrent mutation; shallow — scenario servant
    state is primitive by construction).

    Two replication modes, both driven by **per-servant dirty
    tracking**: the bus records which servants each delivery mutated
    (:meth:`MessageBus.touched_since`), so a sync refreshes only the
    touched servants instead of re-copying the whole partition.

    * ``"full"`` — write-through: touched copies are refreshed in place
      on every mutating routed call (the PR-4 behavior, narrowed).
    * ``"log"`` — log shipping: touched states are appended to the
      partition's :class:`ReplicationLog` and standbys *replay* the
      tail past their applied watermark; the log is snapshot+truncated
      every ``snapshot_every`` entries, and seeding/catch-up/failover
      promotion all ride the same replay path.

    Cross-servant coherence comes from the sync discipline itself:
    every mutating call replicates its effects before it releases the
    node's in-flight count, so a drained (killed) primary has already
    pushed its final state.
    """

    MODES = ("full", "log")

    def __init__(
        self,
        federation: "Federation",
        count: int = 1,
        mode: str = "full",
        snapshot_every: int = 64,
    ):
        if count < 1:
            raise FederationError(f"replication needs >= 1 standby, got {count}")
        if mode not in self.MODES:
            raise FederationError(
                f"unknown replication mode {mode!r}; expected one of {self.MODES}"
            )
        if snapshot_every < 1:
            raise FederationError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.federation = federation
        self.count = count
        self.mode = mode
        self.snapshot_every = snapshot_every
        #: set False to disable per-servant dirty narrowing and fall back
        #: to full-partition syncs on every mutating call (the pre-log
        #: behavior benchmarks baseline against)
        self.dirty_narrowing = True
        self._groups: Dict[str, ReplicaGroup] = {}  # guarded_by: _lock
        #: per-partition append-only op log (log mode only)
        self._logs: Dict[str, ReplicationLog] = {}  # guarded_by: _lock
        #: per-partition reverse index object_id -> binding name, rebuilt
        #: on every full sync; lets a narrowed sync map the bus's touched
        #: object ids to bindings without an O(partition) name listing
        self._index: Dict[str, Dict[str, str]] = {}  # guarded_by: _lock
        self._index_epoch: Dict[str, int] = {}  # guarded_by: _lock
        self._lock = named_rlock("replication.manager")
        #: syncs that actually refreshed at least one standby copy /
        #: skipped because the routed call touched no mutable servant
        self.syncs = 0
        self.skipped_syncs = 0
        #: log-mode counters: entries appended, snapshot+truncate cycles,
        #: and the largest watermark deficit ever observed at catch-up
        self.log_appends = 0
        self.snapshots = 0
        self.max_replica_lag = 0

    def _standby_names(self, partition: str) -> List[str]:
        preference = self.federation.naming.ring.preference(
            partition, self.count + 1
        )
        return preference[1:]

    def sync_partition(self, partition: str, touched=None) -> None:
        """Replicate ``partition``'s state to its standbys.

        ``touched`` is the set of servant object ids the triggering call
        mutated (from :meth:`MessageBus.touched_since`); when given, only
        those servants are refreshed/logged — per-servant dirty tracking.
        ``None`` means "unknown": seed, rebuild, and evicted-window calls
        pay the full-partition path, which also rebuilds the reverse
        index the narrowed path needs.

        Best-effort by design: it runs *after* the triggering call's
        servant effect, so it must never fail that call.  A topology
        swap racing the sync (owner read from one snapshot, gone in the
        next) just skips the refresh — the rebuild that every membership
        change performs re-syncs the partition moments later.
        """
        federation = self.federation
        if touched is not None and self.dirty_narrowing:
            with self._lock:
                if self._sync_narrow(partition, touched):
                    return
        view = federation.naming.partition_view(partition)
        if view is None:
            return
        owner_name, names = view
        owner = federation.nodes.get(owner_name)
        if owner is None:
            return
        try:
            standby_names = self._standby_names(partition)
        except FederationError:
            return
        with self._lock:
            group = self._ensure_group(partition, owner_name, standby_names)
            index: Dict[str, str] = {}
            pairs = []
            for name in names:
                found = federation._servant_on(owner, name)
                if found is None:
                    continue
                ref, servant = found
                index[ref.object_id] = name
                pairs.append((name, ref, servant))
            self._index[partition] = index
            self._index_epoch[partition] = federation.naming.epoch
            if self._replicate(partition, group, owner, pairs, full=True):
                self.syncs += 1

    def _sync_narrow(self, partition: str, touched) -> bool:
        """Refresh only the ``touched`` servants; False -> full path.

        Requires a current group and reverse index (same naming epoch,
        object ids still resolving to the indexed bindings).  Anything
        stale falls back to the full sync, which repairs the index.  A
        touched id belonging to another partition (a concurrent call on
        the same node bumped the counter inside our window) is simply
        not in this partition's index and drops out.
        """
        federation = self.federation
        group = self._groups.get(partition)
        if group is None:
            return False
        if self._index_epoch.get(partition) != federation.naming.epoch:
            return False
        owner = federation.nodes.get(group.primary)
        if owner is None:
            return False
        index = self._index.get(partition, {})
        pairs = []
        for object_id in touched:
            name = index.get(object_id)
            if name is None:
                continue
            found = federation._servant_on(owner, name)
            if found is None or found[0].object_id != object_id:
                return False
            pairs.append((name, found[0], found[1]))
        if not pairs:
            # every touched id is foreign to this partition — either a
            # concurrent foreign mutation landed in our window, or the
            # index is stale; the full path resolves both safely
            return False
        if self._replicate(partition, group, owner, pairs, full=False):
            self.syncs += 1
        return True

    def _ensure_group(
        self, partition: str, owner_name: str, standby_names: List[str]
    ) -> ReplicaGroup:
        group = self._groups.get(partition)
        if (
            group is None
            or group.primary != owner_name
            or list(group.standbys) != standby_names
        ):
            group = ReplicaGroup(partition, owner_name, standby_names)
            self._groups[partition] = group
        return group

    def _replicate(self, partition, group, owner, pairs, full) -> int:
        """Push ``pairs`` [(name, ref, servant)] to the standbys; returns
        the number of copies actually refreshed."""
        if self.mode == "log":
            return self._replicate_log(partition, group, owner, pairs, full)
        return self._copy_through(group, owner, pairs)

    def _snapshot_states(self, owner, pairs):
        """[(name, type name, state)] snapshot under each servant's
        dispatch lock — a concurrent call on the servant cannot tear it."""
        snapshots = []
        for name, ref, servant in pairs:
            state = owner.dispatcher.serialize(
                ref.object_id, lambda s=servant: dict(s.__dict__)
            )
            snapshots.append((name, type(servant).__name__, state))
        return snapshots

    def _copy_through(self, group, owner, pairs) -> int:
        """Full mode: overwrite each standby's copies in place."""
        federation = self.federation
        snapshots = self._snapshot_states(owner, pairs)
        refreshed = 0
        for standby_name in group.standbys:
            standby = federation.nodes.get(standby_name)
            if standby is None or standby.module is None:
                continue
            copies = group.standbys[standby_name]
            for name, type_name, state in snapshots:
                refreshed += self._apply_state(
                    standby.module, copies, name, type_name, state
                )
        return refreshed

    def _replicate_log(self, partition, group, owner, pairs, full) -> int:
        """Log mode: append per-servant deltas, then replay to standbys."""
        federation = self.federation
        log = self._logs.get(partition)
        if log is None:
            log = self._logs[partition] = ReplicationLog(partition)
        for name, type_name, state in self._snapshot_states(owner, pairs):
            log.append(name, type_name, state)
            self.log_appends += 1
        if full:
            # a full append re-states every live binding, so base
            # entries for since-unbound names can be dropped
            log.prune({name for name, _ref, _servant in pairs})
        if len(log.entries) >= self.snapshot_every:
            log.snapshot()
            self.snapshots += 1
        refreshed = 0
        for standby_name in group.standbys:
            standby = federation.nodes.get(standby_name)
            if standby is None or standby.module is None:
                continue
            refreshed += self._catch_up(group, log, standby_name, standby)
        return refreshed

    def _catch_up(self, group, log, standby_name, standby) -> int:
        """Replay the log tail past ``standby_name``'s watermark."""
        applied = group.watermarks.get(standby_name, 0)
        lag = log.seq - applied
        if lag > self.max_replica_lag:
            self.max_replica_lag = lag
        if lag <= 0:
            return 0
        copies = group.standbys[standby_name]
        refreshed = 0
        if applied < log.base_seq:
            # truncated past this watermark: reseed from the base
            # snapshot, then replay the remaining tail
            for name, (type_name, state) in log.base.items():
                refreshed += self._apply_state(
                    standby.module, copies, name, type_name, state
                )
            applied = log.base_seq
        for seq, name, type_name, state in log.entries:
            if seq <= applied:
                continue
            refreshed += self._apply_state(
                standby.module, copies, name, type_name, state
            )
        group.watermarks[standby_name] = log.seq
        return refreshed

    @staticmethod
    def _apply_state(module, copies, name, type_name, state) -> int:
        copy = copies.get(name)
        if copy is None or type(copy).__name__ != type_name:
            cls = getattr(module, type_name, None)
            if cls is None:
                return 0
            copy = cls.__new__(cls)
            copies[name] = copy
        copy.__dict__.clear()
        copy.__dict__.update(state)
        return 1

    def note_skip(self) -> None:
        """Count one replication sync skipped by mutation narrowing."""
        with self._lock:
            self.skipped_syncs += 1

    def take(self, partition: str, node_name: str) -> Dict[str, Any]:
        """The standby copies ``node_name`` holds for ``partition``.

        In log mode the standby is caught up to the log head first, so
        failover promotion rides the log: the promoted copies replay any
        shipped-but-unapplied tail before they are handed out.
        """
        with self._lock:
            group = self._groups.get(partition)
            if group is None:
                return {}
            log = self._logs.get(partition)
            if log is not None and node_name in group.standbys:
                standby = self.federation.nodes.get(node_name)
                if standby is not None and standby.module is not None:
                    self._catch_up(group, log, node_name, standby)
            return dict(group.standbys.get(node_name, {}))

    def drop(self, partition: str) -> None:
        with self._lock:
            self._groups.pop(partition, None)
            self._logs.pop(partition, None)
            self._index.pop(partition, None)
            self._index_epoch.pop(partition, None)

    def rebuild(self) -> None:
        """Re-place every group after a topology change and resync."""
        partitions = {
            ShardedNamingService.partition_key(name)
            for name in self.federation.naming.list()
        }
        with self._lock:
            for stale in set(self._groups) - partitions:
                del self._groups[stale]
            for stale in set(self._logs) - partitions:
                del self._logs[stale]
            for stale in set(self._index) - partitions:
                self._index.pop(stale, None)
                self._index_epoch.pop(stale, None)
        for partition in sorted(partitions):
            self.sync_partition(partition)

    def replica_lag(self) -> int:
        """Largest current watermark deficit across all standbys."""
        with self._lock:
            lag = 0
            for partition, group in self._groups.items():
                log = self._logs.get(partition)
                if log is None:
                    continue
                for standby_name in group.standbys:
                    behind = log.seq - group.watermarks.get(standby_name, 0)
                    if behind > lag:
                        lag = behind
            return lag

    def stats(self) -> Dict[str, Any]:
        lag = self.replica_lag()
        with self._lock:
            return {
                "standbys_per_partition": self.count,
                "mode": self.mode,
                "partitions": len(self._groups),
                "copies": sum(
                    len(copies)
                    for group in self._groups.values()
                    for copies in group.standbys.values()
                ),
                "syncs": self.syncs,
                "skipped_syncs": self.skipped_syncs,
                "log_appends": self.log_appends,
                "snapshots": self.snapshots,
                "replica_lag": lag,
                "max_replica_lag": self.max_replica_lag,
            }


class Federation:
    """Named nodes + sharded naming + routed, metered invocation."""

    #: transport modes a federation can route hops through
    TRANSPORT_MODES = ("inproc", "queued", "socket")

    def __init__(
        self,
        seed: int = 0,
        latency_ms: float = 0.5,
        real_latency_s: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        replicas: int = 64,
        delivery_workers: int = 2,
        transport: str = "inproc",
        socket_family: str = "tcp",
    ):
        if transport not in self.TRANSPORT_MODES:
            raise FederationError(
                f"unknown transport mode {transport!r} "
                f"(one of {', '.join(self.TRANSPORT_MODES)})"
            )
        self.clock = SimClock()
        self.seed = seed
        self.faults = FaultInjector(seed)
        self.metrics = metrics or MetricsRegistry()
        #: tracing + event log + gauge sampling; knobs compiled from
        #: ObservabilitySpec, run-level tracing toggled by the harness
        self.observability = Observability(seed=seed)
        self.naming = ShardedNamingService(replicas)
        self.nodes: Dict[str, Node] = {}
        self.latency_ms = latency_ms
        self.real_latency_s = real_latency_s
        self._route_lock = named_lock("federation.route")
        #: requests routed per target node (transport-level statistic)
        self.routed: Dict[str, int] = {}  # guarded_by: _route_lock
        #: pipelined batches delivered per target node
        self.batches: Dict[str, int] = {}  # guarded_by: _route_lock
        #: how routed hops travel: "inproc" (caller thread), "queued"
        #: (delivery threads even for sync calls), or "socket" (every
        #: hop crosses a real wire connection to the node's listener)
        self.transport_mode = transport
        self.socket_family = socket_family
        #: per-node wire listeners and their endpoints (socket mode)
        self._wire_servers: Dict[str, Any] = {}
        self._endpoints: Dict[str, str] = {}
        self._socket_transport = None
        self._unix_sock_dir: Optional[str] = None
        #: synchronous hop transport (caller-thread semantics; in socket
        #: mode delivery still runs inline — the wire wait is in the
        #: routing terminal, where the GIL is released)
        if transport == "socket":
            from repro.middleware.sockets import SocketTransport

            self._socket_transport = SocketTransport(
                self._endpoints.get, node="federation"
            )
            self.transport = self._socket_transport
        else:
            self.transport = InProcessTransport()
        #: asynchronous hop transport, created lazily on first use
        self.delivery_workers = delivery_workers
        self._async = LazyQueuedTransport(
            lambda: QueuedTransport(
                workers=self.delivery_workers, name="federation"
            )
        )
        #: the one ordered element pipeline every routed hop runs through
        self.chain = InterceptorChain()
        self.chain.add("metrics", self.metrics.element())
        self.chain.add("trace", self.observability.tracer.element())
        self.chain.add("faults", self.faults.interceptor("federation.route"))
        self.chain.add("failover", self._failover_element)
        self.chain.add("latency", self._latency_element)
        self.chain.add("routing", self._routing_element)
        # -- elastic membership state --
        #: serializes join/retire/fail_over against each other
        self._topology_lock = named_rlock("federation.topology")
        #: quiesces in-flight envelopes on partitions under migration
        self._gate = _MigrationGate(observer=self.observability.gate_wait)
        #: per-node count of requests currently executing (kill drains it)
        self._flight_cond = named_condition("federation.flight")
        self._node_flight: Dict[str, int] = {}  # guarded_by: _flight_cond
        #: users/faults provisioned so far — replayed onto joining nodes
        self._provisioned_users: List[Tuple[str, str, tuple]] = []
        self._fault_sites: List[Tuple[str, float, dict]] = []
        #: read-only operation sets per servant type, replayed onto
        #: joining nodes; feeds the buses' per-call mutation flags that
        #: let write-through replication skip read-only routed calls
        self.read_only_ops: Dict[str, frozenset] = {}
        #: (binding pattern, QoS) defaults declared by a deployment
        #: spec; consulted (in declaration order) for calls issued
        #: without an explicit per-call policy
        self._binding_qos: List[Tuple[str, QoS]] = []
        #: the DeploymentSpec this federation was compiled from and the
        #: BootstrapPlan that materialized it (set by
        #: DeploymentCompiler.deploy; None for hand-built federations)
        self.spec = None
        self.bootstrap_plan = None
        #: standby state for failover; None until enable_replication()
        self.replicas: Optional[ReplicaManager] = None
        #: optional ComponentPackage every node runs — scenarios that
        #: support live join stash it here so a joiner replays the exact
        #: artifact the seed nodes deployed
        self.app_package = None
        #: elastic statistics
        self.joins = 0
        self.retires = 0
        self.failovers = 0
        self.bindings_moved = 0
        self.last_rebalance: Dict[str, Any] = {}

    # -- topology ---------------------------------------------------------------

    def add_node(
        self,
        name: str,
        workers: int = 0,
        seed: Optional[int] = None,
        node: Optional[Node] = None,
    ) -> Node:
        if name in self.nodes:
            raise FederationError(f"node {name!r} already exists")
        node = node or Node(
            name,
            workers=workers,
            seed=seed if seed is not None else len(self.nodes) + 1,
        )
        node.federation = self
        self._instrument_node(node)
        self.naming.add_shard(name, node.services.naming)
        self.nodes[name] = node
        if self.transport_mode == "socket":
            self._start_wire_server(node)
        return node

    def _instrument_node(self, node: Node) -> None:
        """Weave the bus-level tracing element into the node's chain."""
        chain = node.services.bus.chain
        if not chain.has("trace"):
            chain.add(
                "trace",
                self.observability.tracer.bus_element(node.name),
                before="faults",
            )

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise FederationError(f"unknown node {name!r}") from None

    def node_for(self, key: str) -> Node:
        """The node owning partition ``key`` (or any name below it)."""
        return self.node(self.naming.ring.owner(self.naming.partition_key(key)))

    def quiesce(self, timeout_s: Optional[float] = None) -> bool:
        """Wait until every asynchronous delivery (oneways included) landed."""
        quiet = self._async.drain(timeout_s)
        for node in list(self.nodes.values()):
            quiet = node.services.bus.drain(timeout_s) and quiet
        return quiet

    def shutdown(self) -> None:
        self._async.shutdown()
        if self._socket_transport is not None:
            self._socket_transport.shutdown()
        for name in list(self._wire_servers):
            self._stop_wire_server(name)
        for node in list(self.nodes.values()):
            node.shutdown()
        if self._unix_sock_dir is not None:
            import shutil

            shutil.rmtree(self._unix_sock_dir, ignore_errors=True)
            self._unix_sock_dir = None

    # -- elastic membership -------------------------------------------------------

    def enable_replication(
        self,
        count: int = 1,
        mode: str = "full",
        snapshot_every: int = 64,
    ) -> ReplicaManager:
        """Give every partition ``count`` standby copies (failover state).

        ``mode`` selects write-through (``"full"``) or log-shipping
        (``"log"``) replication; ``snapshot_every`` is the log-mode
        snapshot+truncate threshold (entries retained before the tail is
        folded into the base snapshot).
        """
        with self._topology_lock:
            if self.replicas is None:
                self.replicas = ReplicaManager(
                    self, count, mode=mode, snapshot_every=snapshot_every
                )
                self.observability.emit(
                    "replication_enabled", count=count, mode=mode
                )
                self.replicas.rebuild()
            elif self.replicas.count != count:
                raise FederationError(
                    f"replication already enabled with "
                    f"{self.replicas.count} standby(s)"
                )
            elif self.replicas.mode != mode:
                raise FederationError(
                    f"replication already enabled in "
                    f"{self.replicas.mode!r} mode"
                )
            return self.replicas

    def set_replication(
        self,
        count: int,
        mode: Optional[str] = None,
        snapshot_every: Optional[int] = None,
    ) -> ReplicaManager:
        """Enable replication or *change* the standby count on a live
        federation (the reconciler's path: a spec diff may raise the
        replica count mid-run).  Re-places every group and resyncs, so
        the new standbys hold current state before the call returns.
        ``snapshot_every`` retunes the log truncation threshold in
        place; the mode itself cannot change live (the reconciler
        refuses such diffs) — passing one only selects the mode when
        replication is first enabled."""
        with self._topology_lock:
            if self.replicas is None:
                return self.enable_replication(
                    count,
                    mode=mode if mode is not None else "full",
                    snapshot_every=(
                        snapshot_every if snapshot_every is not None else 64
                    ),
                )
            if mode is not None and mode != self.replicas.mode:
                raise FederationError(
                    f"replication mode cannot change live "
                    f"({self.replicas.mode!r} -> {mode!r}); standby state "
                    "would have to be rebuilt under traffic"
                )
            if count < 1:
                raise FederationError(
                    "replication cannot be disabled once enabled "
                    "(standby state would be dropped under live traffic)"
                )
            if snapshot_every is not None:
                if snapshot_every < 1:
                    raise FederationError(
                        f"snapshot_every must be >= 1, got {snapshot_every}"
                    )
                self.replicas.snapshot_every = snapshot_every
            self.replicas.count = count
            self.observability.emit("replication_changed", count=count)
            self.replicas.rebuild()
            return self.replicas

    # -- declarative deployment hooks ---------------------------------------------

    def mark_read_only(self, type_name: str, operations) -> None:
        """Set the read-only classification of servant type
        ``type_name`` federation-wide (remembered, so joining nodes are
        classified identically).  Routed calls whose whole dispatch
        touched only read-only operations skip the write-through
        replication sync — the dispatch-layer mutation tracking the
        narrowing relies on lives in each node's bus.  Replace
        semantics: a reconcile that narrows a type's set (reclassifies
        an op as mutating) takes full effect."""
        ops = frozenset(operations)
        self.read_only_ops[type_name] = ops
        for node in self.nodes.values():
            node.services.bus.mark_read_only(type_name, ops)

    def set_binding_qos(self, pattern: str, qos: QoS) -> None:
        """Declare the default QoS for bindings matching ``pattern``
        (fnmatch over the federation name; declaration order wins)."""
        self._binding_qos.append((pattern, qos))

    def replace_binding_qos(self, pairs: Iterable[Tuple[str, QoS]]) -> None:
        """Swap the whole per-binding QoS table in one assignment (the
        reconciler's path: a spec diff re-declares the table rather than
        patching it, so removals take effect too)."""
        self._binding_qos = list(pairs)

    def qos_for(self, name: str) -> Optional[QoS]:
        """The declared default QoS for ``name`` (None if undeclared)."""
        for pattern, qos in self._binding_qos:
            if fnmatch.fnmatchcase(name, pattern):
                return qos
        return None

    def current_spec(self, include_state: bool = False):
        """Re-extract the live topology as a
        :class:`~repro.deploy.DeploymentSpec` — the drift-check input of
        ``DeploymentDiff.between(current, target)``.  ``include_state``
        additionally snapshots every servant's attribute dict (the
        manifest view; mutable state is excluded from structural diffs
        either way)."""
        from repro.deploy.compiler import extract_spec

        return extract_spec(self, include_state=include_state)

    @staticmethod
    def _group_by_partition(names: Iterable[str]) -> Dict[str, List[str]]:
        grouped: Dict[str, List[str]] = {}
        for name in names:
            grouped.setdefault(
                ShardedNamingService.partition_key(name), []
            ).append(name)
        return grouped

    def _bindings_by_partition(self) -> Dict[str, List[str]]:
        return self._group_by_partition(self.naming.list())

    def _servant_on(
        self, node: Node, name: str
    ) -> Optional[Tuple[ObjectRefData, Any]]:
        """The live (ref, servant) behind ``name`` on ``node`` (or None)."""
        try:
            ref = node.services.naming.resolve(name)
            return ref, node.services.bus.servant(ref.object_id)
        except (NamingError, ReproError):
            return None

    def servant(self, name: str) -> Any:
        """The live servant currently serving ``name`` — follows
        migrations and failovers, unlike a reference captured at setup."""
        owner, ref = self.naming.resolve_with_owner(name)
        return self.node(owner).services.bus.servant(ref.object_id)

    def _export_shard(self, source: Node, partition: str, names: List[str]) -> ShardManifest:
        manifest = ShardManifest(partition=partition, source=source.name)
        for name in sorted(names):
            found = self._servant_on(source, name)
            if found is None:
                continue
            ref, servant = found
            # snapshot under the servant's dispatch lock: the freeze
            # drained routed calls, but a nested delivery that bypassed
            # the frozen wait could still be mutating this servant
            state = source.dispatcher.serialize(
                ref.object_id, lambda s=servant: dict(s.__dict__)
            )
            manifest.entries.append((name, type(servant).__name__, state))
        return manifest

    def _import_shard(self, target: Node, manifest: ShardManifest) -> int:
        """Materialize a manifest's servants on ``target``; returns count."""
        if target.module is None:
            raise FederationError(
                f"node {target.name!r} has no application deployed; "
                f"cannot adopt shard {manifest.partition!r}"
            )
        for name, type_name, state in manifest.entries:
            cls = getattr(target.module, type_name, None)
            if cls is None:
                raise FederationError(
                    f"node {target.name!r} has no class {type_name!r}; "
                    f"cannot adopt {name!r}"
                )
            servant = cls.__new__(cls)
            servant.__dict__.update(state)
            ref = target.services.orb.register(servant)
            target.services.naming.rebind(name, ref)
        return len(manifest.entries)

    def _release_exported(self, source: Node, manifest: ShardManifest) -> None:
        """Drop the moved bindings (and servants) from the old owner."""
        for name, _type_name, _state in manifest.entries:
            found = self._servant_on(source, name)
            try:
                source.services.naming.unbind(name)
            except NamingError:
                pass
            if found is not None:
                source.services.orb.unregister(found[1])

    def join(
        self,
        name: str,
        workers: int = 0,
        seed: Optional[int] = None,
        node: Optional[Node] = None,
        deploy: Optional[Callable[[Node], Any]] = None,
        drain_timeout_s: float = 30.0,
    ) -> Node:
        """Add a node to a *live* federation, migrating only what rehashes.

        The joiner is fully prepared off-ring (application deployed via
        ``deploy``, users and fault campaign provisioned); the partitions
        the new ring assigns to it are frozen, their in-flight envelopes
        quiesce, servant state ships as :class:`ShardManifest`\\ s, and
        one atomic epoch swap makes the joiner routable — every other
        partition keeps its owner and never stalls.
        """
        with self._topology_lock:
            if name in self.nodes:
                raise FederationError(f"node {name!r} already exists")
            self.reconcile()
            node = node or Node(
                name,
                workers=workers,
                seed=seed if seed is not None else len(self.nodes) + 1,
            )
            node.federation = self
            self._instrument_node(node)
            if deploy is not None:
                deploy(node)
            for user, password, roles in self._provisioned_users:
                node.services.credentials.add_user(user, password, roles=roles)
            for site, probability, kwargs in self._fault_sites:
                node.services.faults.configure(site, probability, **kwargs)
            for type_name, ops in self.read_only_ops.items():
                node.services.bus.mark_read_only(type_name, ops)
            grouped = self._bindings_by_partition()
            total = sum(len(names) for names in grouped.values())
            next_ring = self.naming.preview_ring(add=name)
            moving = {
                partition: names
                for partition, names in sorted(grouped.items())
                if next_ring.owner(partition) == name
            }
            moved = 0
            with self._gate.freeze(moving, timeout_s=drain_timeout_s):
                manifests = []
                for partition, names in moving.items():
                    source = self.node(self.naming.owner_of(partition))
                    manifests.append(
                        (source, self._export_shard(source, partition, names))
                    )
                for _source, manifest in manifests:
                    moved += self._import_shard(node, manifest)
                # the atomic ownership-epoch swap: the joiner becomes
                # routable only now, with its bindings already in place
                # (and its node entry published first, so a resolver that
                # sees the new topology always finds the node)
                self.nodes[name] = node
                self.naming.add_shard(name, node.services.naming)
                for source, manifest in manifests:
                    self._release_exported(source, manifest)
            self.joins += 1
            self.bindings_moved += moved
            self.last_rebalance = {
                "action": "join",
                "node": name,
                "moved": moved,
                "total": total,
                "partitions": sorted(moving),
            }
            self.observability.emit(
                "join", node=name, moved=moved, partitions=sorted(moving)
            )
            if self.replicas is not None:
                self.replicas.rebuild()
            return node

    def retire(self, name: str, drain_timeout_s: float = 30.0) -> Dict[str, Any]:
        """Gracefully remove a node: migrate its shard, then drop it.

        Every partition the retiree owns is frozen, quiesced, shipped to
        its next ring owner, and released in one epoch swap; retiring the
        last node raises — a federation cannot route with an empty ring.
        """
        with self._topology_lock:
            node = self.nodes.get(name)
            if node is None:
                raise FederationError(f"unknown node {name!r}")
            if not node.alive:
                raise FederationError(
                    f"node {name!r} is dead — fail_over() handles crashed "
                    "nodes; retire() is the graceful path"
                )
            self.reconcile()
            survivors = self.naming.preview_ring(drop=name)
            if not survivors.members:
                raise FederationError(
                    f"cannot retire {name!r}: it is the last node"
                )
            grouped = self._group_by_partition(self.naming.shard(name).list())
            total = len(self.naming.list())
            moved = 0
            with self._gate.freeze(grouped, timeout_s=drain_timeout_s):
                for partition, pnames in sorted(grouped.items()):
                    target = self.node(survivors.owner(partition))
                    manifest = self._export_shard(node, partition, pnames)
                    moved += self._import_shard(target, manifest)
                # epoch swap: the retiree's shard vanishes atomically
                self.naming.remove_shard(name)
                node.alive = False
                del self.nodes[name]
            self._stop_wire_server(name)
            node.shutdown()
            self.retires += 1
            self.bindings_moved += moved
            self.last_rebalance = {
                "action": "retire",
                "node": name,
                "moved": moved,
                "total": total,
                "partitions": sorted(grouped),
            }
            self.observability.emit(
                "retire", node=name, moved=moved, partitions=sorted(grouped)
            )
            if self.replicas is not None:
                self.replicas.rebuild()
            return dict(self.last_rebalance)

    def _await_node_idle(self, name: str, timeout_s: float) -> None:
        """Wait until no admitted request still executes on ``name``."""
        with self._flight_cond:
            if not self._flight_cond.wait_for(
                lambda: self._node_flight.get(name, 0) == 0, timeout_s
            ):
                raise FederationError(
                    f"node {name!r} did not drain within {timeout_s}s"
                )

    def kill(self, name: str, drain_timeout_s: float = 30.0) -> None:
        """Fail-stop a node: requests already executing finish (and
        replicate), new routed calls see :class:`NodeDownError`.  The
        node stays in the ring until the failover interceptor (or an
        explicit :meth:`fail_over`) promotes its standbys."""
        node = self.node(name)
        with self._flight_cond:
            if not node.alive:
                return
            node.alive = False
        self.observability.emit("kill", node=name)
        self._await_node_idle(name, drain_timeout_s)

    def fail_over(self, name: str, blocking: bool = True) -> bool:
        """Promote the standbys of a dead node's partitions.

        Idempotent: returns True if this call performed the promotion,
        False if the node was already gone (a racing caller won) or no
        replication is enabled (nothing to promote — callers keep seeing
        :class:`NodeDownError`, as a replica-less system would).

        ``blocking=False`` skips the promotion when a membership change
        holds the topology lock — the failover element uses it because
        its calling thread holds a migration-gate entry the membership
        change may be waiting on (blocking would invert the two waits);
        the caller's retry, or any later fault, promotes once the lock
        frees up.
        """
        if not self._topology_lock.acquire(blocking=blocking):
            return False
        try:
            node = self.nodes.get(name)
            if node is None:
                return False
            if node.alive:
                raise FederationError(
                    f"node {name!r} is alive — use retire() for a "
                    "graceful leave"
                )
            if self.replicas is None:
                return False
            survivors = self.naming.preview_ring(drop=name)
            if not survivors.members:
                raise FederationError(
                    f"cannot fail over {name!r}: it is the last node"
                )
            # requests admitted before the node died may still be
            # executing (kill's own drain can be racing on another
            # thread): their effects — and write-through syncs — must
            # land before the standby copies are taken, or the promoted
            # state silently loses them
            self._await_node_idle(name, 30.0)
            grouped = self._group_by_partition(self.naming.shard(name).list())
            moved = 0
            lost: List[str] = []
            for partition, pnames in sorted(grouped.items()):
                new_owner = self.node(survivors.owner(partition))
                copies = self.replicas.take(partition, new_owner.name)
                for bound in sorted(pnames):
                    standby = copies.get(bound)
                    if standby is None:
                        lost.append(bound)
                        continue
                    ref = new_owner.services.orb.register(standby)
                    new_owner.services.naming.rebind(bound, ref)
                    moved += 1
                self.replicas.drop(partition)
            # epoch swap: ownership falls to the ring successors — the
            # nodes whose standby copies were just promoted
            self.naming.remove_shard(name)
            del self.nodes[name]
            self._stop_wire_server(name)
            node.shutdown()
            self.failovers += 1
            self.bindings_moved += moved
            self.last_rebalance = {
                "action": "failover",
                "node": name,
                "moved": moved,
                "lost": lost,
                "partitions": sorted(grouped),
            }
            self.observability.emit(
                "failover",
                node=name,
                moved=moved,
                lost=len(lost),
                partitions=sorted(grouped),
            )
            self.replicas.rebuild()
            return True
        finally:
            self._topology_lock.release()

    def reconcile(self) -> List[str]:
        """Promote every dead member still in the ring; returns the
        nodes promoted.  Membership changes call this first so a
        migration never picks a dead node as a target owner."""
        with self._topology_lock:
            promoted = []
            for name in sorted(self.nodes):
                node = self.nodes.get(name)
                if node is not None and not node.alive and self.fail_over(name):
                    promoted.append(name)
            if promoted:
                self.observability.emit("reconcile", promoted=promoted)
            return promoted

    def _failover_element(self, envelope: Envelope, proceed: Callable[[], Any]):
        """On a dead-node transport fault, promote the standbys; the
        re-raise lets the transport's QoS retry budget re-deliver the
        (pre-effect) call, which re-resolves onto the new primary.

        The promotion is attempted without blocking: this thread holds a
        migration-gate entry, and a concurrent join/retire holding the
        topology lock may be waiting for exactly that entry to drain —
        blocking here would stall both until the freeze timeout.

        A ``mid_call`` fault (socket mode: the reply vanished after the
        request frame was written) is upgraded to pre-effect only when
        the node is confirmed dead or already removed — under fail-stop
        its unacked effect died with it and re-delivery re-resolves onto
        the promoted owner.  While the node is still alive the fault
        stays non-retryable: a lost reply must not re-run the effect."""
        try:
            return proceed()
        except NodeDownError as exc:
            if exc.node:
                if exc.pre_effect:
                    self.fail_over(exc.node, blocking=False)
                elif exc.mid_call:
                    node = self.nodes.get(exc.node)
                    if node is None or not node.alive:
                        with contextlib.suppress(FederationError):
                            self.fail_over(exc.node, blocking=False)
                        exc.pre_effect = True
            raise

    # -- users ------------------------------------------------------------------

    def add_user(self, name: str, password: str, roles=()) -> None:
        """Provision a user on every node's credential store (remembered
        so joining nodes are provisioned identically)."""
        self._provisioned_users.append((name, password, tuple(roles)))
        for node in self.nodes.values():
            node.services.credentials.add_user(name, password, roles=roles)

    # -- faults -------------------------------------------------------------------

    def configure_fault(self, site: str, probability: float, **kwargs) -> None:
        """Configure a fault site (pattern allowed) federation-wide."""
        self._fault_sites.append((site, probability, dict(kwargs)))
        self.observability.emit("fault_armed", site=site, probability=probability)
        self.faults.configure(site, probability, **kwargs)
        for node in self.nodes.values():
            node.services.faults.configure(site, probability, **kwargs)

    def faults_injected(self) -> Dict[str, int]:
        """Injected-fault counters summed over the transport and all nodes."""
        totals: Dict[str, int] = dict(self.faults.injected)
        for node in self.nodes.values():
            for site, count in node.services.faults.injected.items():
                totals[site] = totals.get(site, 0) + count
        return totals

    # -- routing ------------------------------------------------------------------

    def resolve(self, name: str) -> Tuple[Node, ObjectRefData]:
        owner, ref = self.naming.resolve_with_owner(name)
        node = self.nodes.get(owner)
        if node is None:
            # the snapshot we resolved against was retired between the
            # lookup and the node-table read; one fresh snapshot heals it
            owner, ref = self.naming.resolve_with_owner(name)
            node = self.node(owner)
        return node, ref

    def ref(self, name: str) -> ObjectRefData:
        """The wire reference of a bound name (usable as a call argument
        for operations served by the same node)."""
        return self.resolve(name)[1]

    # -- chain elements -----------------------------------------------------------

    def _latency_element(self, envelope: Envelope, proceed: Callable[[], Any]):
        """One transport hop: simulated clock time plus optional real sleep
        (the network I/O that concurrent delivery overlaps)."""
        self.clock.advance(self.latency_ms)
        if self.real_latency_s > 0:
            time.sleep(self.real_latency_s)
        return proceed()

    def _routing_element(self, envelope: Envelope, proceed: Callable[[], Any]):
        with self._route_lock:
            self.routed[envelope.target] = self.routed.get(envelope.target, 0) + 1
        return proceed()

    # -- invocation path -----------------------------------------------------------

    @property
    def async_transport(self) -> QueuedTransport:
        return self._async.get()

    def _submission_transport(self):
        """Where an asynchronous submission delivers.

        From a thread that is itself serving a request (delivery thread
        or dispatcher pool worker), nested submissions run inline on the
        in-process transport — queueing them behind the bounded pools
        the caller occupies could deadlock the federation, exactly like
        nested synchronous dispatch (the dispatcher's in-worker rule).
        """
        if in_serving_thread():
            return self.transport
        return self.async_transport

    @staticmethod
    def _inherit(context: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
        """Default a missing context to the current delivery context, so
        nested cross-node calls made by servants propagate transaction
        ids and credentials without manual plumbing."""
        if context is not None:
            return context
        inherited = current_delivery_context()
        return inherited or None

    @contextlib.contextmanager
    def _node_guard(self, node: Node):
        """Atomic aliveness check + in-flight accounting for one hop.

        The check and the bump are one step under the flight condition,
        so :meth:`kill`'s drain cannot miss a request that slipped past
        the check — a dead node never executes another servant effect,
        and kill returns only after every admitted request (including
        its write-through replication) finished."""
        with self._flight_cond:
            if not node.alive:
                raise NodeDownError(
                    f"node {node.name!r} is down", node=node.name
                )
            self._node_flight[node.name] = self._node_flight.get(node.name, 0) + 1
        try:
            yield
        finally:
            with self._flight_cond:
                self._node_flight[node.name] -= 1
                if not self._node_flight[node.name]:
                    del self._node_flight[node.name]
                    self._flight_cond.notify_all()

    def _dispatch(
        self,
        node: Node,
        ref: ObjectRefData,
        operation: str,
        args: tuple,
        kwargs: Optional[dict],
        context: Optional[Dict[str, Any]],
        partition: Optional[str] = None,
        envelope: Optional[Envelope] = None,
    ):
        """The routing terminal — branches on the transport mode.

        In-process and queued modes execute the node hop directly
        (:meth:`_local_dispatch`); socket mode sends the hop over a real
        wire connection to the owner node's listener, whose server-side
        handler runs the *same* :meth:`_local_dispatch` — so the node
        guard, dispatcher serialization, and replication semantics are
        identical on both sides of the wire.
        """
        if self.transport_mode == "socket" and envelope is not None:
            return self._wire_dispatch(node, ref, envelope)
        return self._local_dispatch(
            node, ref, operation, args, kwargs, context, partition
        )

    def _local_dispatch(
        self,
        node: Node,
        ref: ObjectRefData,
        operation: str,
        args: tuple,
        kwargs: Optional[dict],
        context: Optional[Dict[str, Any]],
        partition: Optional[str] = None,
    ):
        """The node hop: dead-node classification + dispatch + replication.

        The replication of a named call runs *inside* the node guard: a
        kill that drained to zero has therefore already captured every
        completed effect in the standby copies (or shipped it through
        the replication log) — there is no window where an effect exists
        only on the dying primary.

        Mutation narrowing: the sync is skipped when the node's bus saw
        no (possibly) mutating dispatch while this call executed — the
        call's own dispatch, and every nested delivery it made on the
        node, were all spec-declared read-only operations.  Otherwise
        the bus's per-delivery record names exactly which servants were
        touched, so only those are refreshed (per-servant dirty
        tracking).  A concurrent mutating call on the same node can only
        flip a skip into a sync or widen the touched set (the safe
        direction); a mutating call always observes its own bump, so its
        sync is never skipped."""
        with self._node_guard(node):
            track = partition is not None and self.replicas is not None
            bus = node.services.bus
            before = bus.mutations if track else 0
            value = node.invoke(ref, operation, args, kwargs or {}, context)
            if track:
                if bus.mutations != before:
                    self.replicas.sync_partition(
                        partition, touched=bus.touched_since(before)
                    )
                else:
                    self.replicas.note_skip()
            return value

    # -- socket loopback mode -----------------------------------------------------

    @staticmethod
    def _proxy_ref(value: Any) -> Optional[ObjectRefData]:
        """Client-side marshalling hook: proxies travel as references."""
        if isinstance(value, RemoteProxy):
            return value.ref
        return None

    def _wire_dispatch(self, node: Node, ref: ObjectRefData, envelope: Envelope):
        """Send one routed hop over the wire to ``node``'s listener.

        The hop envelope carries the *same* correlation id, message id,
        QoS, binding, and attempt counter as the in-memory envelope the
        chain executed — a traced retry over sockets is recognizably the
        same logical call — but its request payload is re-marshalled
        into pure wire values (proxies become references).  Faults come
        back as FAULT frames and re-raise here with their retryability
        intact, so the failover element and the QoS budget behave
        exactly as they do in process.
        """
        request = envelope.request
        hop = Envelope(
            request=Request(
                object_id=ref.object_id,
                operation=request.operation,
                args=marshal(list(request.args), self._proxy_ref, root="args"),
                kwargs=marshal(
                    dict(request.kwargs), self._proxy_ref, root="kwargs"
                ),
                context=dict(request.context),
                message_id=request.message_id,
            ),
            qos=envelope.qos,
            correlation_id=envelope.correlation_id,
            target=node.name,
            binding=envelope.binding,
            label=envelope.label,
            attempt=envelope.attempt,
        )
        response = self._socket_transport.roundtrip(node.name, hop)
        if response is None:  # oneway: the ack is the whole reply
            return None
        if response.is_error:
            node.services.bus.raise_remote(response)
        # hydrate through the owner's orb, as an in-process hop would
        return node.services.orb._from_wire(response.result)

    def _serve_wire_request(self, node: Node, envelope: Envelope):
        """Server half of a wire hop: runs on the listener's connection
        thread, inside the node's own process space.

        Rebuilds the dispatch coordinates from the envelope (the client
        already re-resolved the owner for this attempt) and runs the
        ordinary local terminal — node guard, dispatcher, replication —
        then re-marshals the hydrated result for the return frame.
        """
        request = envelope.request
        type_name = (envelope.label or ".").rsplit(".", 1)[0]
        ref = ObjectRefData(request.object_id, type_name)
        partition = (
            ShardedNamingService.partition_key(envelope.binding)
            if envelope.binding
            else None
        )
        result = self._local_dispatch(
            node,
            ref,
            request.operation,
            tuple(request.args),
            dict(request.kwargs),
            dict(request.context),
            partition,
        )
        return marshal(result, self._proxy_ref, root="result")

    def _start_wire_server(self, node: Node) -> None:
        """Bind a per-node listener and publish its endpoint (socket mode)."""
        from repro.middleware.sockets import WireServer

        if self.socket_family == "unix":
            endpoint = f"unix://{self._unix_dir()}/{node.name}.sock"
        else:
            endpoint = "tcp://127.0.0.1:0"
        server = WireServer(
            node=node.name,
            request_handler=lambda env, n=node: self._serve_wire_request(n, env),
            endpoint=endpoint,
        )
        server.start()
        self._wire_servers[node.name] = server
        self._endpoints[node.name] = server.endpoint

    def _stop_wire_server(self, name: str) -> None:
        """Tear down a removed node's listener; in-flight connections to
        it fail as mid-call :class:`NodeDownError` on the client side,
        which the failover element upgrades to pre-effect because the
        node is already out of the table."""
        endpoint = self._endpoints.pop(name, None)
        server = self._wire_servers.pop(name, None)
        if server is not None:
            server.stop()
        if endpoint is not None and self._socket_transport is not None:
            self._socket_transport.pool.invalidate(endpoint)

    def _unix_dir(self) -> str:
        if self._unix_sock_dir is None:
            import tempfile

            self._unix_sock_dir = tempfile.mkdtemp(prefix="repro-fed-")
        return self._unix_sock_dir

    def _envelope(
        self,
        node: Node,
        ref: ObjectRefData,
        operation: str,
        args: tuple,
        kwargs: Optional[dict],
        context: Optional[Dict[str, Any]],
        qos: QoS,
        binding: Optional[str] = None,
    ) -> Tuple[Envelope, Callable[[Envelope], Any]]:
        """Build one routed hop: envelope + its chain-wrapped handler.

        With a ``binding`` (the federation name the caller routed by),
        the handler enters the migration gate and re-resolves the owner
        on *every* delivery attempt — so queued envelopes and QoS
        retries land on the current primary even if the shard migrated
        or failed over since submission — and, on success, write-through
        replicates the partition's servant state to its standbys.

        ``context`` may be a *provider* ``callable(node) -> dict`` (how
        :class:`FederationClient` attaches credentials): it is re-invoked
        per attempt against the re-resolved owner, because a security
        token minted by the old primary means nothing to the node that
        took over its shard.
        """
        if qos is DEFAULT_QOS and binding is not None:
            # spec-declared per-binding QoS default: applies only when
            # the caller did not state a policy (identity check — an
            # explicit QoS() equal to the default is still explicit)
            declared = self.qos_for(binding)
            if declared is not None:
                qos = declared
        provider = context if callable(context) else None
        if provider is not None:
            context_for = lambda n: provider(n) or {}  # noqa: E731
        else:
            static_context = self._inherit(context)
            context_for = lambda n: static_context  # noqa: E731
        tracer = self.observability.tracer
        # captured on the caller's thread at build time: the active
        # span (a harness root span, or the bus span of the dispatch
        # this nested call was made from) becomes this hop's parent.
        # Inherited delivery contexts already carry the trace key.
        trace_headers = tracer.current_headers() if tracer.enabled else None
        request = Request(
            object_id=ref.object_id,
            operation=operation,
            args=list(args),
            kwargs=dict(kwargs or {}),
            context=dict(context_for(node) or {}),
        )
        if trace_headers is not None:
            request.context[TRACE_KEY] = trace_headers
        envelope = Envelope(
            request=request,
            qos=qos,
            target=node.name,
            label=f"{ref.type_name}.{operation}",
            binding=binding,
        )

        if binding is None:

            def handler(env: Envelope):
                # the dispatch reads the *envelope's* context, not the
                # provider's raw dict: chain elements (tracing) re-stamp
                # per-attempt keys into it on the way through
                return self.chain.execute(
                    env,
                    lambda: self._dispatch(
                        node, ref, operation, args, kwargs,
                        env.request.context, envelope=env,
                    ),
                )

            return envelope, handler

        partition = ShardedNamingService.partition_key(binding)

        def handler(env: Envelope):
            with self._gate.entered(partition):
                owner, live_ref = self.resolve(binding)
                env.target = owner.name
                env.request.object_id = live_ref.object_id
                env.request.context = attempt_context = dict(
                    context_for(owner) or {}
                )
                if trace_headers is not None:
                    attempt_context[TRACE_KEY] = trace_headers
                # the dispatch reads the *envelope's* context: chain
                # elements (tracing) re-stamp per-attempt keys into it
                return self.chain.execute(
                    env,
                    lambda: self._dispatch(
                        owner, live_ref, operation, args, kwargs,
                        env.request.context, partition, envelope=env,
                    ),
                )

        return envelope, handler

    def invoke(
        self,
        node: Node,
        ref: ObjectRefData,
        operation: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = DEFAULT_QOS,
        binding: Optional[str] = None,
    ):
        """Route one request to ``node`` and execute it there, metered."""
        envelope, handler = self._envelope(
            node, ref, operation, args, kwargs, context, qos, binding
        )
        return self.transport.submit(envelope, handler).raw()

    def invoke_async(
        self,
        node: Node,
        ref: ObjectRefData,
        operation: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = DEFAULT_QOS,
        binding: Optional[str] = None,
    ) -> ReplyFuture:
        """Route one request asynchronously; returns the reply future."""
        envelope, handler = self._envelope(
            node, ref, operation, args, kwargs, context, qos, binding
        )
        return self._submission_transport().submit(envelope, handler)

    def oneway(
        self,
        node: Node,
        ref: ObjectRefData,
        operation: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = ONEWAY_QOS,
        binding: Optional[str] = None,
    ) -> None:
        """Fire-and-forget delivery: at most one servant effect, no reply."""
        envelope, handler = self._envelope(
            node, ref, operation, args, kwargs, context, qos, binding
        )
        self._submission_transport().submit(envelope, handler)

    def call(
        self,
        name: str,
        operation: str,
        *args,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = DEFAULT_QOS,
        **kwargs,
    ):
        """Resolve ``name`` and invoke ``operation`` on its owner node."""
        node, ref = self.resolve(name)
        return self.invoke(node, ref, operation, args, kwargs, context, qos, name)

    def call_async(
        self,
        name: str,
        operation: str,
        *args,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = DEFAULT_QOS,
        **kwargs,
    ) -> ReplyFuture:
        node, ref = self.resolve(name)
        return self.invoke_async(
            node, ref, operation, args, kwargs, context, qos, name
        )

    def call_oneway(
        self,
        name: str,
        operation: str,
        *args,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = ONEWAY_QOS,
        **kwargs,
    ) -> None:
        node, ref = self.resolve(name)
        self.oneway(node, ref, operation, args, kwargs, context, qos, name)

    def pipeline(
        self,
        max_batch: int = 8,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = DEFAULT_QOS,
    ) -> "InvocationPipeline":
        """A batching client: consecutive same-node calls share one hop."""
        context_for = None
        if context is not None:
            snapshot = dict(context)
            context_for = lambda node: snapshot  # noqa: E731 - tiny closure
        return InvocationPipeline(
            self, max_batch=max_batch, context_for=context_for, qos=qos
        )

    # -- batched delivery ----------------------------------------------------------

    def _submit_batch(self, node: Node, items: List["_PipelinedCall"], qos: QoS) -> None:
        """One envelope for a whole node-batch: the chain (fault check,
        hop latency, routing) runs once, then every member call executes
        through the owner node's dispatcher — submitted first, awaited
        second, so calls against different servants overlap.

        Elastic interaction: the batch holds its member partitions in
        the migration gate and the node's flight count (so freezes and
        kill-drains wait for it), but the target node is fixed at flush
        time — a batch never re-routes after a failover; use the
        per-call paths when membership churn must be transparent."""
        request = Request(
            object_id="<pipeline>",
            operation="<batch>",
            args=[item.label for item in items],
            kwargs={},
        )
        tracer = self.observability.tracer
        if tracer.enabled:
            headers = tracer.current_headers()
            if headers is not None:
                request.context[TRACE_KEY] = headers
        envelope = Envelope(request=request, qos=qos, target=node.name, label=None)

        partitions = sorted(
            {
                ShardedNamingService.partition_key(item.name)
                for item in items
                if item.name is not None
            }
        )

        def terminal():
            with self._route_lock:
                self.batches[node.name] = self.batches.get(node.name, 0) + 1
            with contextlib.ExitStack() as stack:
                # the batch holds its members' partitions in the
                # migration gate (entered atomically: frozen partitions
                # it does not already hold block the whole entry) and
                # its target nodes' flight counts for its whole
                # lifetime: a freeze waits for it, a kill drains it.  Members re-resolve their bindings at
                # delivery time, so a batch queued across a migration or
                # promoted failover executes against the current owners
                # (the flush-time grouping only fixes which calls shared
                # this envelope's hop).
                stack.enter_context(self._gate.entered_many(partitions))
                return self._run_batch(node, items, stack)

        def handler(env: Envelope):
            return self.chain.execute(env, terminal)

        batch_future = self._submission_transport().submit(envelope, handler)

        def propagate_batch_failure(done: ReplyFuture) -> None:
            # a transport fault killed the whole batch before any member
            # ran (the terminal completes members itself): fail them all
            if done._exception is not None:
                for item in items:
                    item.future._fail(done._exception)

        batch_future.add_done_callback(propagate_batch_failure)

    def _run_batch(
        self,
        node: Node,
        items: List["_PipelinedCall"],
        stack: "contextlib.ExitStack",
    ) -> int:
        """Dispatch and await one node-batch's members.

        Each member re-resolves its binding first (the gate is already
        held), so deliveries land on the *current* owner even if the
        shard moved since the flush; every distinct target node is held
        in the flight guard for the batch's remaining lifetime, so kill
        drains cover the members.  A dead target raises the pre-effect
        :class:`NodeDownError` for the whole batch — the failover
        element promotes and the batch envelope's retry budget re-runs
        this terminal against the re-resolved owners.
        """
        targets: List[Optional[Tuple[Node, ObjectRefData]]] = []
        guarded: set = set()
        for item in items:
            if item.name is None:
                owner, ref = node, item.ref
            else:
                try:
                    owner, ref = self.resolve(item.name)
                except ReproError as exc:
                    item.future._fail(exc)
                    targets.append(None)
                    continue
            if owner.name not in guarded:
                # raises NodeDownError (pre-effect) if the target died
                stack.enter_context(self._node_guard(owner))
                guarded.add(owner.name)
            targets.append((owner, ref))
        dispatched = []
        last_by_servant: Dict[str, Any] = {}
        for item, target in zip(items, targets):
            if target is None:
                dispatched.append(None)
                continue
            owner, ref = target
            # same-servant members must execute in submission order:
            # the pool serializes them on the servant lock but does
            # not order the acquisitions, so gate on the previous
            # same-servant dispatch before submitting the next
            previous = last_by_servant.get(ref.object_id)
            if previous is not None:
                previous.exception()  # wait; outcome consumed below
            started = time.perf_counter()
            mutations_before = owner.services.bus.mutations
            try:
                pending = owner.invoke_async(
                    ref, item.operation, item.args, item.kwargs, item.context
                )
            except Exception as exc:  # noqa: BLE001 - routed to the future
                self.metrics.record(
                    item.label, owner.name, time.perf_counter() - started, error=True
                )
                item.future._fail(exc)
                dispatched.append(None)
                continue
            last_by_servant[ref.object_id] = pending
            dispatched.append((pending, started, owner, mutations_before))
        for item, entry in zip(items, dispatched):
            if entry is None:
                continue
            pending, started, owner, mutations_before = entry
            # each member's latency runs from its own dispatch, not
            # from the batch start — comparable to per-call metering
            try:
                value = pending.result()
            except Exception as exc:  # noqa: BLE001 - routed to the future
                self.metrics.record(
                    item.label, owner.name, time.perf_counter() - started, error=True
                )
                item.future._fail(exc)
                continue
            self.metrics.record(
                item.label, owner.name, time.perf_counter() - started
            )
            if self.replicas is not None and item.name is not None:
                # same mutation narrowing as the per-call path: members
                # whose dispatch bumped no mutation flag skip the sync,
                # and the rest refresh only the servants they touched
                bus = owner.services.bus
                if bus.mutations != mutations_before:
                    self.replicas.sync_partition(
                        ShardedNamingService.partition_key(item.name),
                        touched=bus.touched_since(mutations_before),
                    )
                else:
                    self.replicas.note_skip()
            item.future._complete(value)
        return len(items)

    # -- reporting ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        stats = {
            "nodes": [node.stats() for node in self.nodes.values()],
            "shards": self.naming.stats(),
            "epoch": self.naming.epoch,
            "routed": dict(sorted(self.routed.items())),
            "sim_transport_ms": self.clock.now(),
            "faults_injected": self.faults_injected(),
        }
        if self.batches:
            stats["batches"] = dict(sorted(self.batches.items()))
        if self.joins or self.retires or self.failovers:
            stats["elastic"] = {
                "joins": self.joins,
                "retires": self.retires,
                "failovers": self.failovers,
                "bindings_moved": self.bindings_moved,
                "last_rebalance": dict(self.last_rebalance),
            }
        if self.replicas is not None:
            stats["replication"] = self.replicas.stats()
        async_transport = self._async.peek()
        if async_transport is not None:
            stats["async_transport"] = async_transport.stats()
        return stats


class _PipelinedCall:
    """One queued member of an :class:`InvocationPipeline` batch.

    Members travel inside the batch envelope, but each future still
    carries its own envelope (request payload + the pipeline's QoS) so
    ``future.result()`` honours the configured timeout and callers can
    introspect what they sent.
    """

    __slots__ = (
        "node", "ref", "name", "operation", "args", "kwargs", "context",
        "label", "future",
    )

    def __init__(self, node, ref, operation, args, kwargs, context, qos, name=None):
        self.node = node
        self.ref = ref
        self.name = name
        self.operation = operation
        self.args = args
        self.kwargs = kwargs
        self.context = context
        self.label = f"{ref.type_name}.{operation}"
        envelope = Envelope(
            request=Request(
                object_id=ref.object_id,
                operation=operation,
                args=list(args),
                kwargs=dict(kwargs),
                context=dict(context or {}),
            ),
            qos=qos,
            target=node.name,
            label=self.label,
        )
        self.future = ReplyFuture(envelope)


class InvocationPipeline:
    """Client-side batching of consecutive same-node calls.

    ``call`` queues an invocation and returns its future immediately; a
    flush (explicit, on leaving the ``with`` block, or automatic once
    ``max_batch`` calls are queued) groups *consecutive* calls to the
    same node and ships each group as one envelope — one fault-injection
    site check and one hop latency per group, so a latency-bound client
    pays transport cost per batch instead of per call.

    Ordering: within one batch, calls against the *same servant* execute
    in program order; beyond that — across batches, across flushes, and
    for different servants inside a batch — deliveries may interleave
    freely, like independent network flows.  Callers with cross-batch or
    cross-servant ordering dependencies must await the earlier future
    (or use synchronous calls) before issuing the dependent call.

    Elastic caveat: a batch's target node is fixed when it flushes —
    shard migrations wait for in-flight batches (the batch holds the
    migration gate and the node's flight count), but a batch caught by
    a node kill fails its members rather than re-routing them.
    """

    def __init__(
        self,
        federation: Federation,
        max_batch: int = 8,
        context_for: Optional[Callable[[Node], Optional[Dict[str, Any]]]] = None,
        qos: QoS = DEFAULT_QOS,
    ):
        if max_batch < 1:
            raise FederationError(f"pipeline batch must be >= 1, got {max_batch}")
        self.federation = federation
        self.max_batch = max_batch
        self.context_for = context_for
        self.qos = qos
        self._pending: List[_PipelinedCall] = []

    def call(self, name: str, operation: str, *args, **kwargs) -> ReplyFuture:
        node, ref = self.federation.resolve(name)
        context = self.context_for(node) if self.context_for is not None else None
        context = Federation._inherit(context)
        item = _PipelinedCall(
            node, ref, operation, args, kwargs, context, self.qos, name
        )
        self._pending.append(item)
        if len(self._pending) >= self.max_batch:
            self.flush()
        return item.future

    def flush(self) -> None:
        """Ship every queued call, grouped by consecutive target node."""
        pending, self._pending = self._pending, []
        batch: List[_PipelinedCall] = []
        for item in pending:
            if batch and item.node is not batch[0].node:
                self.federation._submit_batch(batch[0].node, batch, self.qos)
                batch = []
            batch.append(item)
        if batch:
            self.federation._submit_batch(batch[0].node, batch, self.qos)

    def __enter__(self) -> "InvocationPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.flush()


class FederationClient:
    """A client identity: routed calls with per-node credentials.

    ``qos`` sets the client's default policy for synchronous and
    asynchronous calls (elastic scenarios hand every client a retry
    budget so failover re-delivery is automatic); per-call ``qos=``
    still overrides it.
    """

    def __init__(
        self,
        federation: Federation,
        user: Optional[str] = None,
        password: Optional[str] = None,
        qos: Optional[QoS] = None,
    ):
        self.federation = federation
        self.user = user
        self.password = password
        self.default_qos = qos or DEFAULT_QOS
        self._tokens: Dict[str, str] = {}

    def ref(self, name: str) -> ObjectRefData:
        return self.federation.ref(name)

    def _token_for(self, node: Node) -> str:
        token = self._tokens.get(node.name)
        if token is None:
            credential = node.services.auth.login(self.user, self.password)
            token = self._tokens[node.name] = credential.token
        return token

    def _context_for(self, node: Node) -> Optional[Dict[str, Any]]:
        if self.user is None:
            return None
        return {"credentials": self._token_for(node)}

    def call(
        self, name: str, operation: str, *args, qos: Optional[QoS] = None, **kwargs
    ):
        node, ref = self.federation.resolve(name)
        return self.federation.invoke(
            node, ref, operation, args, kwargs,
            self._context_for, qos or self.default_qos, name,
        )

    def call_async(
        self, name: str, operation: str, *args, qos: Optional[QoS] = None, **kwargs
    ) -> ReplyFuture:
        node, ref = self.federation.resolve(name)
        return self.federation.invoke_async(
            node, ref, operation, args, kwargs,
            self._context_for, qos or self.default_qos, name,
        )

    def oneway(
        self, name: str, operation: str, *args, qos: QoS = ONEWAY_QOS, **kwargs
    ) -> None:
        node, ref = self.federation.resolve(name)
        self.federation.oneway(
            node, ref, operation, args, kwargs,
            self._context_for, qos, name,
        )

    def pipeline(self, max_batch: int = 8, qos: QoS = DEFAULT_QOS) -> InvocationPipeline:
        """A batching view of this client (credentials attached per node)."""
        return InvocationPipeline(
            self.federation,
            max_batch=max_batch,
            context_for=self._context_for,
            qos=qos,
        )
