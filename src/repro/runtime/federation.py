"""Multi-node ORB federation: consistent-hash sharding and request routing.

The federation is the inter-node fabric:

* :class:`HashRing` — consistent hashing with virtual nodes; adding or
  removing a node only remaps the keys that land on its ring segments.
* :class:`ShardedNamingService` — the paper-level naming service scaled
  out: names are partitioned by their first path segment over per-shard
  :class:`~repro.middleware.naming.NamingService` instances (each node's
  local naming service is its shard), so resolution is one hash plus one
  local lookup, with no global table.
* :class:`Federation` — node registry plus the routed invocation path:
  resolve the owning node, charge transport latency (simulated clock time
  plus an optional *real* sleep modelling network I/O — the component
  concurrent dispatch overlaps), run fault-injection sites, execute on
  the owner through its dispatcher, and record per-operation/per-node
  metrics.
* :class:`FederationClient` — a caller identity: resolves names anywhere
  in the federation and attaches per-node credentials to each request.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FederationError, NamingError
from repro.middleware.bus import ObjectRefData
from repro.middleware.clock import SimClock
from repro.middleware.faults import FaultInjector
from repro.middleware.naming import NamingService
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.node import Node


class HashRing:
    """Consistent-hash ring with virtual nodes."""

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise FederationError(f"ring needs >= 1 replica, got {replicas}")
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        self._members: List[str] = []

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.md5(value.encode("utf-8")).digest()[:8], "big"
        )

    @property
    def members(self) -> List[str]:
        return list(self._members)

    def add(self, name: str) -> None:
        if name in self._members:
            raise FederationError(f"ring member {name!r} already present")
        self._members.append(name)
        for i in range(self.replicas):
            point = self._hash(f"{name}#{i}")
            # md5 collisions across member names are not expected; keep
            # first owner on the astronomically unlikely tie
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = name
        self._members.sort()

    def remove(self, name: str) -> None:
        if name not in self._members:
            raise FederationError(f"ring member {name!r} not present")
        self._members.remove(name)
        for i in range(self.replicas):
            point = self._hash(f"{name}#{i}")
            if self._owners.get(point) == name:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def owner(self, key: str) -> str:
        """The member owning ``key`` (clockwise successor on the ring)."""
        if not self._points:
            raise FederationError("hash ring is empty")
        point = self._hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]


class ShardedNamingService:
    """Consistent-hash shards over plain :class:`NamingService` stores.

    The partition key of a name is its first path segment
    (``branch-3/Account/7`` → ``branch-3``), so all names below one
    partition co-locate on one shard — the property single-shard
    transactions rely on.
    """

    def __init__(self, replicas: int = 64):
        self.ring = HashRing(replicas)
        self._shards: Dict[str, NamingService] = {}

    # -- topology -----------------------------------------------------------

    def add_shard(
        self, shard_name: str, naming: Optional[NamingService] = None
    ) -> NamingService:
        if shard_name in self._shards:
            raise FederationError(f"shard {shard_name!r} already exists")
        store = naming or NamingService()
        self.ring.add(shard_name)
        self._shards[shard_name] = store
        return store

    @property
    def shard_names(self) -> List[str]:
        return sorted(self._shards)

    @staticmethod
    def partition_key(name: str) -> str:
        if not name or not isinstance(name, str):
            raise NamingError(f"invalid name {name!r}")
        for part in name.split("/"):
            if part:
                return part
        raise NamingError(f"invalid name {name!r}")

    def owner_of(self, name: str) -> str:
        return self.ring.owner(self.partition_key(name))

    def shard_for(self, name: str) -> NamingService:
        return self._shards[self.owner_of(name)]

    def shard(self, shard_name: str) -> NamingService:
        try:
            return self._shards[shard_name]
        except KeyError:
            raise FederationError(f"unknown shard {shard_name!r}") from None

    # -- naming operations -----------------------------------------------------

    def bind(self, name: str, ref: ObjectRefData) -> None:
        self.shard_for(name).bind(name, ref)

    def rebind(self, name: str, ref: ObjectRefData) -> None:
        self.shard_for(name).rebind(name, ref)

    def resolve(self, name: str) -> ObjectRefData:
        return self.shard_for(name).resolve(name)

    def unbind(self, name: str) -> None:
        self.shard_for(name).unbind(name)

    def list(self, prefix: str = "") -> List[str]:
        names: List[str] = []
        for shard in self._shards.values():
            names.extend(shard.list(prefix))
        return sorted(names)

    def stats(self) -> Dict[str, int]:
        """Bindings per shard — the shard-balance view."""
        return {name: len(shard.list()) for name, shard in sorted(self._shards.items())}


class Federation:
    """Named nodes + sharded naming + routed, metered invocation."""

    def __init__(
        self,
        seed: int = 0,
        latency_ms: float = 0.5,
        real_latency_s: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        replicas: int = 64,
    ):
        self.clock = SimClock()
        self.faults = FaultInjector(seed)
        self.metrics = metrics or MetricsRegistry()
        self.naming = ShardedNamingService(replicas)
        self.nodes: Dict[str, Node] = {}
        self.latency_ms = latency_ms
        self.real_latency_s = real_latency_s
        self._route_lock = threading.Lock()
        #: requests routed per target node (transport-level statistic)
        self.routed: Dict[str, int] = {}

    # -- topology ---------------------------------------------------------------

    def add_node(
        self,
        name: str,
        workers: int = 0,
        seed: Optional[int] = None,
        node: Optional[Node] = None,
    ) -> Node:
        if name in self.nodes:
            raise FederationError(f"node {name!r} already exists")
        node = node or Node(
            name,
            workers=workers,
            seed=seed if seed is not None else len(self.nodes) + 1,
        )
        node.federation = self
        self.naming.add_shard(name, node.services.naming)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise FederationError(f"unknown node {name!r}") from None

    def node_for(self, key: str) -> Node:
        """The node owning partition ``key`` (or any name below it)."""
        return self.node(self.naming.ring.owner(self.naming.partition_key(key)))

    def shutdown(self) -> None:
        for node in self.nodes.values():
            node.shutdown()

    # -- users ------------------------------------------------------------------

    def add_user(self, name: str, password: str, roles=()) -> None:
        """Provision a user on every node's credential store."""
        for node in self.nodes.values():
            node.services.credentials.add_user(name, password, roles=roles)

    # -- faults -------------------------------------------------------------------

    def configure_fault(self, site: str, probability: float, **kwargs) -> None:
        """Configure a fault site (pattern allowed) federation-wide."""
        self.faults.configure(site, probability, **kwargs)
        for node in self.nodes.values():
            node.services.faults.configure(site, probability, **kwargs)

    def faults_injected(self) -> Dict[str, int]:
        """Injected-fault counters summed over the transport and all nodes."""
        totals: Dict[str, int] = dict(self.faults.injected)
        for node in self.nodes.values():
            for site, count in node.services.faults.injected.items():
                totals[site] = totals.get(site, 0) + count
        return totals

    # -- routing ------------------------------------------------------------------

    def resolve(self, name: str) -> Tuple[Node, ObjectRefData]:
        owner = self.naming.owner_of(name)
        ref = self.naming.shard(owner).resolve(name)
        return self.node(owner), ref

    def ref(self, name: str) -> ObjectRefData:
        """The wire reference of a bound name (usable as a call argument
        for operations served by the same node)."""
        return self.resolve(name)[1]

    def _charge_transport(self) -> None:
        self.faults.check("federation.route")
        self.clock.advance(self.latency_ms)
        if self.real_latency_s > 0:
            time.sleep(self.real_latency_s)

    def invoke(
        self,
        node: Node,
        ref: ObjectRefData,
        operation: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        context: Optional[Dict[str, Any]] = None,
    ):
        """Route one request to ``node`` and execute it there, metered."""
        label = f"{ref.type_name}.{operation}"
        started = time.perf_counter()
        try:
            self._charge_transport()
            with self._route_lock:
                self.routed[node.name] = self.routed.get(node.name, 0) + 1
            result = node.invoke(ref, operation, args, kwargs or {}, context)
        except Exception:
            self.metrics.record(
                label, node.name, time.perf_counter() - started, error=True
            )
            raise
        self.metrics.record(label, node.name, time.perf_counter() - started)
        return result

    def call(
        self,
        name: str,
        operation: str,
        *args,
        context: Optional[Dict[str, Any]] = None,
        **kwargs,
    ):
        """Resolve ``name`` and invoke ``operation`` on its owner node."""
        node, ref = self.resolve(name)
        return self.invoke(node, ref, operation, args, kwargs, context)

    # -- reporting ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "nodes": [node.stats() for node in self.nodes.values()],
            "shards": self.naming.stats(),
            "routed": dict(sorted(self.routed.items())),
            "sim_transport_ms": self.clock.now(),
            "faults_injected": self.faults_injected(),
        }


class FederationClient:
    """A client identity: routed calls with per-node credentials."""

    def __init__(
        self,
        federation: Federation,
        user: Optional[str] = None,
        password: Optional[str] = None,
    ):
        self.federation = federation
        self.user = user
        self.password = password
        self._tokens: Dict[str, str] = {}

    def ref(self, name: str) -> ObjectRefData:
        return self.federation.ref(name)

    def _token_for(self, node: Node) -> str:
        token = self._tokens.get(node.name)
        if token is None:
            credential = node.services.auth.login(self.user, self.password)
            token = self._tokens[node.name] = credential.token
        return token

    def call(self, name: str, operation: str, *args, **kwargs):
        node, ref = self.federation.resolve(name)
        context: Dict[str, Any] = {}
        if self.user is not None:
            context["credentials"] = self._token_for(node)
        return self.federation.invoke(node, ref, operation, args, kwargs, context)
