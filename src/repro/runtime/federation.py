"""Multi-node ORB federation: consistent-hash sharding and request routing.

The federation is the inter-node fabric:

* :class:`HashRing` — consistent hashing with virtual nodes; adding or
  removing a node only remaps the keys that land on its ring segments.
* :class:`ShardedNamingService` — the paper-level naming service scaled
  out: names are partitioned by their first path segment over per-shard
  :class:`~repro.middleware.naming.NamingService` instances (each node's
  local naming service is its shard), so resolution is one hash plus one
  local lookup, with no global table.
* :class:`Federation` — node registry plus the routed invocation path.
  Every hop is an :class:`~repro.middleware.envelope.Envelope` running
  through one ordered interceptor chain (metrics → fault injection →
  latency → routing statistics → the owner node's dispatcher) over a
  pluggable transport: in-process synchronous for classic blocking
  calls, queued-asynchronous (delivery threads) for futures, oneways,
  and pipelined batches.
* :class:`InvocationPipeline` — client-side batching: consecutive calls
  to the same node travel as one envelope, so a latency-bound client
  pays one transport hop per batch instead of per call.
* :class:`FederationClient` — a caller identity: resolves names anywhere
  in the federation and attaches per-node credentials to each request,
  in all four invocation styles (sync, async future, oneway, pipeline).
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import FederationError, NamingError
from repro.middleware.bus import ObjectRefData, Request
from repro.middleware.clock import SimClock
from repro.middleware.envelope import (
    DEFAULT_QOS,
    ONEWAY_QOS,
    Envelope,
    InterceptorChain,
    QoS,
    ReplyFuture,
    current_delivery_context,
)
from repro.middleware.faults import FaultInjector
from repro.middleware.naming import NamingService
from repro.middleware.transport import (
    InProcessTransport,
    LazyQueuedTransport,
    QueuedTransport,
    in_serving_thread,
)
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.node import Node


class HashRing:
    """Consistent-hash ring with virtual nodes."""

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise FederationError(f"ring needs >= 1 replica, got {replicas}")
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        self._members: List[str] = []

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.md5(value.encode("utf-8")).digest()[:8], "big"
        )

    @property
    def members(self) -> List[str]:
        return list(self._members)

    def add(self, name: str) -> None:
        if name in self._members:
            raise FederationError(f"ring member {name!r} already present")
        self._members.append(name)
        for i in range(self.replicas):
            point = self._hash(f"{name}#{i}")
            # md5 collisions across member names are not expected; keep
            # first owner on the astronomically unlikely tie
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = name
        self._members.sort()

    def remove(self, name: str) -> None:
        if name not in self._members:
            raise FederationError(f"ring member {name!r} not present")
        self._members.remove(name)
        for i in range(self.replicas):
            point = self._hash(f"{name}#{i}")
            if self._owners.get(point) == name:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def owner(self, key: str) -> str:
        """The member owning ``key`` (clockwise successor on the ring)."""
        if not self._points:
            raise FederationError("hash ring is empty")
        point = self._hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]


class ShardedNamingService:
    """Consistent-hash shards over plain :class:`NamingService` stores.

    The partition key of a name is its first path segment
    (``branch-3/Account/7`` → ``branch-3``), so all names below one
    partition co-locate on one shard — the property single-shard
    transactions rely on.
    """

    def __init__(self, replicas: int = 64):
        self.ring = HashRing(replicas)
        self._shards: Dict[str, NamingService] = {}

    # -- topology -----------------------------------------------------------

    def add_shard(
        self, shard_name: str, naming: Optional[NamingService] = None
    ) -> NamingService:
        if shard_name in self._shards:
            raise FederationError(f"shard {shard_name!r} already exists")
        store = naming or NamingService()
        self.ring.add(shard_name)
        self._shards[shard_name] = store
        return store

    @property
    def shard_names(self) -> List[str]:
        return sorted(self._shards)

    @staticmethod
    def partition_key(name: str) -> str:
        if not name or not isinstance(name, str):
            raise NamingError(f"invalid name {name!r}")
        for part in name.split("/"):
            if part:
                return part
        raise NamingError(f"invalid name {name!r}")

    def owner_of(self, name: str) -> str:
        return self.ring.owner(self.partition_key(name))

    def shard_for(self, name: str) -> NamingService:
        return self._shards[self.owner_of(name)]

    def shard(self, shard_name: str) -> NamingService:
        try:
            return self._shards[shard_name]
        except KeyError:
            raise FederationError(f"unknown shard {shard_name!r}") from None

    # -- naming operations -----------------------------------------------------

    def bind(self, name: str, ref: ObjectRefData) -> None:
        self.shard_for(name).bind(name, ref)

    def rebind(self, name: str, ref: ObjectRefData) -> None:
        self.shard_for(name).rebind(name, ref)

    def resolve(self, name: str) -> ObjectRefData:
        return self.shard_for(name).resolve(name)

    def unbind(self, name: str) -> None:
        self.shard_for(name).unbind(name)

    def list(self, prefix: str = "") -> List[str]:
        names: List[str] = []
        for shard in self._shards.values():
            names.extend(shard.list(prefix))
        return sorted(names)

    def stats(self) -> Dict[str, int]:
        """Bindings per shard — the shard-balance view."""
        return {name: len(shard.list()) for name, shard in sorted(self._shards.items())}


class Federation:
    """Named nodes + sharded naming + routed, metered invocation."""

    def __init__(
        self,
        seed: int = 0,
        latency_ms: float = 0.5,
        real_latency_s: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        replicas: int = 64,
        delivery_workers: int = 2,
    ):
        self.clock = SimClock()
        self.faults = FaultInjector(seed)
        self.metrics = metrics or MetricsRegistry()
        self.naming = ShardedNamingService(replicas)
        self.nodes: Dict[str, Node] = {}
        self.latency_ms = latency_ms
        self.real_latency_s = real_latency_s
        self._route_lock = threading.Lock()
        #: requests routed per target node (transport-level statistic)
        self.routed: Dict[str, int] = {}
        #: pipelined batches delivered per target node
        self.batches: Dict[str, int] = {}
        #: synchronous hop transport (caller-thread semantics)
        self.transport = InProcessTransport()
        #: asynchronous hop transport, created lazily on first use
        self.delivery_workers = delivery_workers
        self._async = LazyQueuedTransport(
            lambda: QueuedTransport(
                workers=self.delivery_workers, name="federation"
            )
        )
        #: the one ordered element pipeline every routed hop runs through
        self.chain = InterceptorChain()
        self.chain.add("metrics", self.metrics.element())
        self.chain.add("faults", self.faults.interceptor("federation.route"))
        self.chain.add("latency", self._latency_element)
        self.chain.add("routing", self._routing_element)

    # -- topology ---------------------------------------------------------------

    def add_node(
        self,
        name: str,
        workers: int = 0,
        seed: Optional[int] = None,
        node: Optional[Node] = None,
    ) -> Node:
        if name in self.nodes:
            raise FederationError(f"node {name!r} already exists")
        node = node or Node(
            name,
            workers=workers,
            seed=seed if seed is not None else len(self.nodes) + 1,
        )
        node.federation = self
        self.naming.add_shard(name, node.services.naming)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise FederationError(f"unknown node {name!r}") from None

    def node_for(self, key: str) -> Node:
        """The node owning partition ``key`` (or any name below it)."""
        return self.node(self.naming.ring.owner(self.naming.partition_key(key)))

    def quiesce(self, timeout_s: Optional[float] = None) -> bool:
        """Wait until every asynchronous delivery (oneways included) landed."""
        quiet = self._async.drain(timeout_s)
        for node in self.nodes.values():
            quiet = node.services.bus.drain(timeout_s) and quiet
        return quiet

    def shutdown(self) -> None:
        self._async.shutdown()
        for node in self.nodes.values():
            node.shutdown()

    # -- users ------------------------------------------------------------------

    def add_user(self, name: str, password: str, roles=()) -> None:
        """Provision a user on every node's credential store."""
        for node in self.nodes.values():
            node.services.credentials.add_user(name, password, roles=roles)

    # -- faults -------------------------------------------------------------------

    def configure_fault(self, site: str, probability: float, **kwargs) -> None:
        """Configure a fault site (pattern allowed) federation-wide."""
        self.faults.configure(site, probability, **kwargs)
        for node in self.nodes.values():
            node.services.faults.configure(site, probability, **kwargs)

    def faults_injected(self) -> Dict[str, int]:
        """Injected-fault counters summed over the transport and all nodes."""
        totals: Dict[str, int] = dict(self.faults.injected)
        for node in self.nodes.values():
            for site, count in node.services.faults.injected.items():
                totals[site] = totals.get(site, 0) + count
        return totals

    # -- routing ------------------------------------------------------------------

    def resolve(self, name: str) -> Tuple[Node, ObjectRefData]:
        owner = self.naming.owner_of(name)
        ref = self.naming.shard(owner).resolve(name)
        return self.node(owner), ref

    def ref(self, name: str) -> ObjectRefData:
        """The wire reference of a bound name (usable as a call argument
        for operations served by the same node)."""
        return self.resolve(name)[1]

    # -- chain elements -----------------------------------------------------------

    def _latency_element(self, envelope: Envelope, proceed: Callable[[], Any]):
        """One transport hop: simulated clock time plus optional real sleep
        (the network I/O that concurrent delivery overlaps)."""
        self.clock.advance(self.latency_ms)
        if self.real_latency_s > 0:
            time.sleep(self.real_latency_s)
        return proceed()

    def _routing_element(self, envelope: Envelope, proceed: Callable[[], Any]):
        with self._route_lock:
            self.routed[envelope.target] = self.routed.get(envelope.target, 0) + 1
        return proceed()

    # -- invocation path -----------------------------------------------------------

    @property
    def async_transport(self) -> QueuedTransport:
        return self._async.get()

    def _submission_transport(self):
        """Where an asynchronous submission delivers.

        From a thread that is itself serving a request (delivery thread
        or dispatcher pool worker), nested submissions run inline on the
        in-process transport — queueing them behind the bounded pools
        the caller occupies could deadlock the federation, exactly like
        nested synchronous dispatch (the dispatcher's in-worker rule).
        """
        if in_serving_thread():
            return self.transport
        return self.async_transport

    @staticmethod
    def _inherit(context: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
        """Default a missing context to the current delivery context, so
        nested cross-node calls made by servants propagate transaction
        ids and credentials without manual plumbing."""
        if context is not None:
            return context
        inherited = current_delivery_context()
        return inherited or None

    def _envelope(
        self,
        node: Node,
        ref: ObjectRefData,
        operation: str,
        args: tuple,
        kwargs: Optional[dict],
        context: Optional[Dict[str, Any]],
        qos: QoS,
    ) -> Tuple[Envelope, Callable[[Envelope], Any]]:
        """Build one routed hop: envelope + its chain-wrapped handler."""
        context = self._inherit(context)
        request = Request(
            object_id=ref.object_id,
            operation=operation,
            args=list(args),
            kwargs=dict(kwargs or {}),
            context=dict(context or {}),
        )
        envelope = Envelope(
            request=request,
            qos=qos,
            target=node.name,
            label=f"{ref.type_name}.{operation}",
        )

        def handler(env: Envelope):
            return self.chain.execute(
                env,
                lambda: node.invoke(ref, operation, args, kwargs or {}, context),
            )

        return envelope, handler

    def invoke(
        self,
        node: Node,
        ref: ObjectRefData,
        operation: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = DEFAULT_QOS,
    ):
        """Route one request to ``node`` and execute it there, metered."""
        envelope, handler = self._envelope(
            node, ref, operation, args, kwargs, context, qos
        )
        return self.transport.submit(envelope, handler).raw()

    def invoke_async(
        self,
        node: Node,
        ref: ObjectRefData,
        operation: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = DEFAULT_QOS,
    ) -> ReplyFuture:
        """Route one request asynchronously; returns the reply future."""
        envelope, handler = self._envelope(
            node, ref, operation, args, kwargs, context, qos
        )
        return self._submission_transport().submit(envelope, handler)

    def oneway(
        self,
        node: Node,
        ref: ObjectRefData,
        operation: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = ONEWAY_QOS,
    ) -> None:
        """Fire-and-forget delivery: at most one servant effect, no reply."""
        envelope, handler = self._envelope(
            node, ref, operation, args, kwargs, context, qos
        )
        self._submission_transport().submit(envelope, handler)

    def call(
        self,
        name: str,
        operation: str,
        *args,
        context: Optional[Dict[str, Any]] = None,
        **kwargs,
    ):
        """Resolve ``name`` and invoke ``operation`` on its owner node."""
        node, ref = self.resolve(name)
        return self.invoke(node, ref, operation, args, kwargs, context)

    def call_async(
        self,
        name: str,
        operation: str,
        *args,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = DEFAULT_QOS,
        **kwargs,
    ) -> ReplyFuture:
        node, ref = self.resolve(name)
        return self.invoke_async(node, ref, operation, args, kwargs, context, qos)

    def call_oneway(
        self,
        name: str,
        operation: str,
        *args,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = ONEWAY_QOS,
        **kwargs,
    ) -> None:
        node, ref = self.resolve(name)
        self.oneway(node, ref, operation, args, kwargs, context, qos)

    def pipeline(
        self,
        max_batch: int = 8,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = DEFAULT_QOS,
    ) -> "InvocationPipeline":
        """A batching client: consecutive same-node calls share one hop."""
        context_for = None
        if context is not None:
            snapshot = dict(context)
            context_for = lambda node: snapshot  # noqa: E731 - tiny closure
        return InvocationPipeline(
            self, max_batch=max_batch, context_for=context_for, qos=qos
        )

    # -- batched delivery ----------------------------------------------------------

    def _submit_batch(self, node: Node, items: List["_PipelinedCall"], qos: QoS) -> None:
        """One envelope for a whole node-batch: the chain (fault check,
        hop latency, routing) runs once, then every member call executes
        through the owner node's dispatcher — submitted first, awaited
        second, so calls against different servants overlap."""
        request = Request(
            object_id="<pipeline>",
            operation="<batch>",
            args=[item.label for item in items],
            kwargs={},
        )
        envelope = Envelope(request=request, qos=qos, target=node.name, label=None)

        def terminal():
            with self._route_lock:
                self.batches[node.name] = self.batches.get(node.name, 0) + 1
            dispatched = []
            last_by_servant: Dict[str, Any] = {}
            for item in items:
                # same-servant members must execute in submission order:
                # the pool serializes them on the servant lock but does
                # not order the acquisitions, so gate on the previous
                # same-servant dispatch before submitting the next
                previous = last_by_servant.get(item.ref.object_id)
                if previous is not None:
                    previous.exception()  # wait; outcome consumed below
                started = time.perf_counter()
                try:
                    pending = node.invoke_async(
                        item.ref, item.operation, item.args, item.kwargs, item.context
                    )
                except Exception as exc:  # noqa: BLE001 - routed to the future
                    self.metrics.record(
                        item.label, node.name, time.perf_counter() - started, error=True
                    )
                    item.future._fail(exc)
                    dispatched.append(None)
                    continue
                last_by_servant[item.ref.object_id] = pending
                dispatched.append((pending, started))
            for item, entry in zip(items, dispatched):
                if entry is None:
                    continue
                pending, started = entry
                # each member's latency runs from its own dispatch, not
                # from the batch start — comparable to per-call metering
                try:
                    value = pending.result()
                except Exception as exc:  # noqa: BLE001 - routed to the future
                    self.metrics.record(
                        item.label, node.name, time.perf_counter() - started, error=True
                    )
                    item.future._fail(exc)
                    continue
                self.metrics.record(
                    item.label, node.name, time.perf_counter() - started
                )
                item.future._complete(value)
            return len(items)

        batch_future = self._submission_transport().submit(
            envelope, lambda env: self.chain.execute(env, terminal)
        )

        def propagate_batch_failure(done: ReplyFuture) -> None:
            # a transport fault killed the whole batch before any member
            # ran (the terminal completes members itself): fail them all
            if done._exception is not None:
                for item in items:
                    item.future._fail(done._exception)

        batch_future.add_done_callback(propagate_batch_failure)

    # -- reporting ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        stats = {
            "nodes": [node.stats() for node in self.nodes.values()],
            "shards": self.naming.stats(),
            "routed": dict(sorted(self.routed.items())),
            "sim_transport_ms": self.clock.now(),
            "faults_injected": self.faults_injected(),
        }
        if self.batches:
            stats["batches"] = dict(sorted(self.batches.items()))
        async_transport = self._async.peek()
        if async_transport is not None:
            stats["async_transport"] = async_transport.stats()
        return stats


class _PipelinedCall:
    """One queued member of an :class:`InvocationPipeline` batch.

    Members travel inside the batch envelope, but each future still
    carries its own envelope (request payload + the pipeline's QoS) so
    ``future.result()`` honours the configured timeout and callers can
    introspect what they sent.
    """

    __slots__ = ("node", "ref", "operation", "args", "kwargs", "context", "label", "future")

    def __init__(self, node, ref, operation, args, kwargs, context, qos):
        self.node = node
        self.ref = ref
        self.operation = operation
        self.args = args
        self.kwargs = kwargs
        self.context = context
        self.label = f"{ref.type_name}.{operation}"
        envelope = Envelope(
            request=Request(
                object_id=ref.object_id,
                operation=operation,
                args=list(args),
                kwargs=dict(kwargs),
                context=dict(context or {}),
            ),
            qos=qos,
            target=node.name,
            label=self.label,
        )
        self.future = ReplyFuture(envelope)


class InvocationPipeline:
    """Client-side batching of consecutive same-node calls.

    ``call`` queues an invocation and returns its future immediately; a
    flush (explicit, on leaving the ``with`` block, or automatic once
    ``max_batch`` calls are queued) groups *consecutive* calls to the
    same node and ships each group as one envelope — one fault-injection
    site check and one hop latency per group, so a latency-bound client
    pays transport cost per batch instead of per call.

    Ordering: within one batch, calls against the *same servant* execute
    in program order; beyond that — across batches, across flushes, and
    for different servants inside a batch — deliveries may interleave
    freely, like independent network flows.  Callers with cross-batch or
    cross-servant ordering dependencies must await the earlier future
    (or use synchronous calls) before issuing the dependent call.
    """

    def __init__(
        self,
        federation: Federation,
        max_batch: int = 8,
        context_for: Optional[Callable[[Node], Optional[Dict[str, Any]]]] = None,
        qos: QoS = DEFAULT_QOS,
    ):
        if max_batch < 1:
            raise FederationError(f"pipeline batch must be >= 1, got {max_batch}")
        self.federation = federation
        self.max_batch = max_batch
        self.context_for = context_for
        self.qos = qos
        self._pending: List[_PipelinedCall] = []

    def call(self, name: str, operation: str, *args, **kwargs) -> ReplyFuture:
        node, ref = self.federation.resolve(name)
        context = self.context_for(node) if self.context_for is not None else None
        context = Federation._inherit(context)
        item = _PipelinedCall(node, ref, operation, args, kwargs, context, self.qos)
        self._pending.append(item)
        if len(self._pending) >= self.max_batch:
            self.flush()
        return item.future

    def flush(self) -> None:
        """Ship every queued call, grouped by consecutive target node."""
        pending, self._pending = self._pending, []
        batch: List[_PipelinedCall] = []
        for item in pending:
            if batch and item.node is not batch[0].node:
                self.federation._submit_batch(batch[0].node, batch, self.qos)
                batch = []
            batch.append(item)
        if batch:
            self.federation._submit_batch(batch[0].node, batch, self.qos)

    def __enter__(self) -> "InvocationPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.flush()


class FederationClient:
    """A client identity: routed calls with per-node credentials."""

    def __init__(
        self,
        federation: Federation,
        user: Optional[str] = None,
        password: Optional[str] = None,
    ):
        self.federation = federation
        self.user = user
        self.password = password
        self._tokens: Dict[str, str] = {}

    def ref(self, name: str) -> ObjectRefData:
        return self.federation.ref(name)

    def _token_for(self, node: Node) -> str:
        token = self._tokens.get(node.name)
        if token is None:
            credential = node.services.auth.login(self.user, self.password)
            token = self._tokens[node.name] = credential.token
        return token

    def _context_for(self, node: Node) -> Optional[Dict[str, Any]]:
        if self.user is None:
            return None
        return {"credentials": self._token_for(node)}

    def call(self, name: str, operation: str, *args, **kwargs):
        node, ref = self.federation.resolve(name)
        return self.federation.invoke(
            node, ref, operation, args, kwargs, self._context_for(node) or {}
        )

    def call_async(
        self, name: str, operation: str, *args, qos: QoS = DEFAULT_QOS, **kwargs
    ) -> ReplyFuture:
        node, ref = self.federation.resolve(name)
        return self.federation.invoke_async(
            node, ref, operation, args, kwargs, self._context_for(node) or {}, qos
        )

    def oneway(
        self, name: str, operation: str, *args, qos: QoS = ONEWAY_QOS, **kwargs
    ) -> None:
        node, ref = self.federation.resolve(name)
        self.federation.oneway(
            node, ref, operation, args, kwargs, self._context_for(node) or {}, qos
        )

    def pipeline(self, max_batch: int = 8, qos: QoS = DEFAULT_QOS) -> InvocationPipeline:
        """A batching view of this client (credentials attached per node)."""
        return InvocationPipeline(
            self.federation,
            max_batch=max_batch,
            context_for=self._context_for,
            qos=qos,
        )
