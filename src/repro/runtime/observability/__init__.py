"""Federation observability plane: tracing, gauges, event log.

The paper's thesis applied to instrumentation: observability is a
cross-cutting concern, so it is *declared* (``ObservabilitySpec`` in the
deployment spec), *compiled* (the deploy layer configures this facade),
and *woven* (tracing elements in the federation and bus interceptor
chains) — never hand-stitched into call sites.

One :class:`Observability` instance serves a federation:

* :attr:`tracer` — span buffer + the two chain elements
  (:mod:`.tracing`);
* :attr:`events` — the bounded structured event log (:mod:`.events`);
* :meth:`sample` — reads per-node in-flight / queue-depth /
  dispatcher-pool gauges and replica lag into the metrics registry's
  :class:`~repro.runtime.observability.gauges.GaugeBoard`.

The bounded histogram backing every metrics series lives in
:mod:`.histogram`.
"""

from __future__ import annotations

from typing import Any, Dict

from .events import EventLog
from .gauges import GaugeBoard
from .histogram import BUCKETS, GROWTH, MAX_TRACKED, MIN_TRACKED, LogHistogram
from .tracing import TRACE_KEY, Span, TraceContext, Tracer

#: spec-level defaults, shared with ObservabilitySpec so a default spec
#: and a hand-built federation agree
DEFAULT_SAMPLE_RATE = 1.0
DEFAULT_SLOW_CALL_MS = 50.0
DEFAULT_EVENT_LOG_CAPACITY = 1024
DEFAULT_SPAN_CAPACITY = 4096

__all__ = [
    "Observability",
    "Tracer",
    "TraceContext",
    "Span",
    "TRACE_KEY",
    "EventLog",
    "GaugeBoard",
    "LogHistogram",
    "BUCKETS",
    "GROWTH",
    "MIN_TRACKED",
    "MAX_TRACKED",
    "DEFAULT_SAMPLE_RATE",
    "DEFAULT_SLOW_CALL_MS",
    "DEFAULT_EVENT_LOG_CAPACITY",
    "DEFAULT_SPAN_CAPACITY",
]


class Observability:
    """Per-federation facade over tracer + event log + gauge sampling."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.tracer = Tracer(
            capacity=DEFAULT_SPAN_CAPACITY,
            sample_rate=DEFAULT_SAMPLE_RATE,
            slow_call_ms=DEFAULT_SLOW_CALL_MS,
        )
        self.events = EventLog(capacity=DEFAULT_EVENT_LOG_CAPACITY)

    # -- configuration (compiled from ObservabilitySpec) -----------------------

    def configure(self, spec: Any) -> None:
        """Apply an ObservabilitySpec (or anything shaped like one).

        Every knob is live-tunable: the reconciler re-invokes this on a
        running federation for observability-only spec diffs.
        """
        if isinstance(spec, dict):
            get = spec.get
        else:
            get = lambda key, default=None: getattr(spec, key, default)  # noqa: E731
        sample_rate = get("sample_rate")
        if sample_rate is not None:
            self.tracer.sample_rate = float(sample_rate)
        slow_call_ms = get("slow_call_ms")
        if slow_call_ms is not None:
            self.tracer.slow_call_ms = float(slow_call_ms)
        span_capacity = get("span_capacity")
        if span_capacity is not None and int(span_capacity) != self.tracer.capacity:
            self.tracer.set_capacity(int(span_capacity))
        event_log_capacity = get("event_log_capacity")
        if (
            event_log_capacity is not None
            and int(event_log_capacity) != self.events.capacity
        ):
            self.events.set_capacity(int(event_log_capacity))

    def enable_tracing(self, enabled: bool = True) -> None:
        self.tracer.enabled = enabled

    def describe(self) -> Dict[str, Any]:
        """The live knob values (run provenance; `simulate --describe`)."""
        return {
            "tracing": self.tracer.enabled,
            "sample_rate": self.tracer.sample_rate,
            "slow_call_ms": self.tracer.slow_call_ms,
            "span_capacity": self.tracer.capacity,
            "event_log_capacity": self.events.capacity,
            "histogram": {"growth": GROWTH, "buckets": BUCKETS},
        }

    # -- events ----------------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Log a lifecycle event; mirrored onto the active span, if any."""
        self.tracer.event(kind, **fields)
        return self.events.emit(kind, **fields)

    def gate_wait(self, partitions: Any, waited_ms: float) -> None:
        """Hook for the migration gate: a delivery blocked on a freeze."""
        self.emit(
            "migration_gate_wait",
            partitions=sorted(partitions),
            waited_ms=round(waited_ms, 3),
        )

    # -- gauges ----------------------------------------------------------------

    def sample(self, federation) -> Dict[str, float]:
        """Read the federation's level gauges into its metrics registry."""
        board: GaugeBoard = federation.metrics.gauges
        values: Dict[str, float] = {}

        def put(name: str, value: float) -> None:
            values[name] = value
            board.set(name, value)

        for name, node in sorted(federation.nodes.items()):
            dispatch = node.dispatcher.stats.snapshot()
            put(f"node.{name}.in_flight", dispatch.get("in_flight", 0))
            put(f"node.{name}.dispatcher_workers", node.dispatcher.workers)
            put(f"node.{name}.routed_in_flight", federation._node_flight.get(name, 0))
            bus_async = node.services.bus._async.peek()
            if bus_async is not None:
                put(f"node.{name}.bus_queue_depth", bus_async.stats()["queued"])
        transport = federation._async.peek()
        if transport is not None:
            stats = transport.stats()
            put("federation.delivery_queue_depth", stats["queued"])
            put("federation.delivery_in_flight", stats["in_flight"])
            put("federation.delivery_workers", stats["workers"])
        if federation.replicas is not None:
            rep = federation.replicas.stats()
            put("replication.lag", rep["replica_lag"])
            put("replication.max_lag", rep["max_replica_lag"])
        return values

    # -- export ----------------------------------------------------------------

    def export(self, metrics=None) -> Dict[str, Any]:
        """Everything a results consumer needs, as one JSON-shaped dict."""
        payload = {
            "config": self.describe(),
            "tracer": self.tracer.export(),
            "events": self.events.records(),
            "events_dropped": self.events.dropped,
        }
        if metrics is not None:
            payload["gauges"] = metrics.gauges.snapshot()
        return payload
