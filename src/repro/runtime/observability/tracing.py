"""Distributed tracing woven into the interceptor chains.

A :class:`TraceContext` rides the envelope's propagated request context
(under the ``"trace"`` key) through ``delivering()``, exactly like
credentials do, so every hop — sync, queued, nested servant-to-servant,
bus-level dispatch — can parent its span correctly without any side
channel.

Span topology per logical call:

* a **client** root span (opened by the harness or any caller via
  :meth:`Tracer.client_span`) with a trace id derived deterministically
  from the run seed + client index + op index;
* one **hop** span per federation delivery *attempt* (the federation
  chain element).  A retried attempt parents under the failed attempt's
  span, so a failover reads as: failed hop (NodeDownError, with the
  ``failover`` promotion event) → child retry hop landing on the
  promoted node;
* one **bus** span per servant dispatch on the serving node (the bus
  chain element), parented under the hop that delivered it.

Sampling is decided once per trace id (deterministic hash), so a
sample_rate < 1 drops whole call trees, never partial ones.  Finished
spans land in a bounded ring buffer; ``dropped`` counts overflow.
"""

from __future__ import annotations

import itertools
import threading
import time
import zlib
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.witness import named_lock
from repro.middleware.envelope import delivery_context_value, will_retry

#: the request-context key the trace rides under
TRACE_KEY = "trace"


class TraceContext:
    """Identity of one position in a call tree."""

    __slots__ = ("trace_id", "span_id", "parent_span_id")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_span_id: Optional[str] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_span_id = parent_span_id

    def headers(self) -> Dict[str, str]:
        """The propagation form stamped into ``request.context['trace']``."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def child(self, span_id: str) -> "TraceContext":
        return TraceContext(self.trace_id, span_id, parent_span_id=self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.trace_id}/{self.span_id})"


class Span:
    """One timed unit of work inside a trace."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "kind",
        "target",
        "attempt",
        "status",
        "error",
        "start_s",
        "duration_s",
        "events",
        "slow",
        "_tracer",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        kind: str,
        target: Optional[str],
        attempt: int,
        start_s: float,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.target = target
        self.attempt = attempt
        self.status = "open"
        self.error: Optional[str] = None
        self.start_s = start_s
        self.duration_s = 0.0
        # lazy: most spans carry no events, so the list is only
        # allocated when the first event lands
        self.events: Optional[List[Dict[str, Any]]] = None
        self.slow = False

    def add_event(self, record: Dict[str, Any]) -> None:
        events = self.events
        if events is None:
            self.events = [record]
        else:
            events.append(record)

    # a client root span is its own context manager (the ``_tracer``
    # slot is only assigned on that path — hop/bus spans never pay it)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.status = "ok"
        else:
            self.status = "error"
            self.error = exc_type.__name__
        self._tracer._close(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "attempt": self.attempt,
            "status": self.status,
            "error": self.error,
            "duration_ms": round(self.duration_s * 1000.0, 4),
            "slow": self.slow,
            "events": list(self.events) if self.events else [],
        }


class _NoopSpan:
    """The context manager the untraced / unsampled path enters."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Span factory, ring buffer, and the two chain elements."""

    def __init__(
        self,
        capacity: int = 4096,
        sample_rate: float = 1.0,
        slow_call_ms: float = 50.0,
    ):
        #: run-level switch (RunConfig.trace / simulate --trace); the
        #: chain elements cost one attribute read when disabled
        self.enabled = False
        self.sample_rate = sample_rate
        self.slow_call_ms = slow_call_ms
        # the hot path never takes a lock: ``deque.append`` with maxlen
        # evicts atomically under the GIL, so finished spans from many
        # threads never serialize behind one tracer lock.  The lock only
        # guards structural swaps (set_capacity).
        self._lock = named_lock("observability.tracer")
        self._spans: deque = deque(maxlen=max(1, int(capacity)))
        self._finished = 0
        self.slow_count = 0
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._clock: Callable[[], float] = time.perf_counter

    # -- identity / sampling ---------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._spans.maxlen

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring (derived, not counted on-path)."""
        return max(0, self._finished - len(self._spans))

    def set_capacity(self, capacity: int) -> None:
        with self._lock:
            # keeps the newest spans; ``dropped`` is derived, so a
            # shrink shows up in it automatically
            self._spans = deque(self._spans, maxlen=max(1, int(capacity)))

    @staticmethod
    def trace_id_for(seed: int, client_index: int, op_index: int) -> str:
        """Deterministic trace id: same seed → same ids, run after run."""
        return f"{seed & 0xFFFFFFFF:08x}-{client_index:04x}-{op_index:06x}"

    def sampled(self, trace_id: str) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        # deterministic per trace id: the same op is sampled (or not)
        # on every run with the same seed
        return (zlib.crc32(trace_id.encode()) % 1_000_000) < (
            self.sample_rate * 1_000_000
        )

    # -- span lifecycle --------------------------------------------------------

    def _open(
        self,
        trace_id: str,
        parent_id: Optional[str],
        name: str,
        kind: str,
        target: Optional[str],
        attempt: int,
        span_id: Optional[str] = None,
    ) -> Span:
        return Span(
            trace_id,
            span_id or f"s{next(self._ids):x}",
            parent_id,
            name,
            kind,
            target,
            attempt,
            self._clock(),
        )

    def _push(self, span: Span) -> None:
        local = self._local
        stack = getattr(local, "stack", None)
        if stack is None:
            local.stack = [span]
        else:
            stack.append(span)

    def _close(self, span: Span) -> None:
        """Pop + finish in one step: stamp duration, unwind the
        thread-local stack, land the span in the ring (lock-free)."""
        span.duration_s = self._clock() - span.start_s
        if span.duration_s * 1000.0 >= self.slow_call_ms:
            span.slow = True
            self.slow_count += 1
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        self._finished += 1
        self._spans.append(span)

    def event(self, name: str, **attrs: Any) -> bool:
        """Attach an event to this thread's innermost open span."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return False
        record = dict(attrs)
        record["event"] = name
        stack[-1].add_event(record)
        return True

    def current_headers(self) -> Optional[Dict[str, str]]:
        """Propagation headers of this thread's innermost open span."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        span = stack[-1]
        return {"trace_id": span.trace_id, "span_id": span.span_id}

    def client_span(self, name: str, trace_id: str):
        """Root span for one logical client call (a no-op when disabled
        or when the trace id falls outside the sample)."""
        if not self.enabled:
            return _NOOP_SPAN
        if self.sample_rate < 1.0 and not self.sampled(trace_id):
            return _NOOP_SPAN
        span = self._open(
            trace_id, None, name, "client", None, 0, trace_id + ".0"
        )
        span._tracer = self
        self._push(span)
        return span

    # -- chain elements --------------------------------------------------------

    def element(self):
        """Federation-chain element: one hop span per delivery attempt.

        Runs inside the per-attempt envelope handler, *after* the
        binding re-resolve and context re-mint, so it observes the
        target the attempt actually lands on and can re-stamp the trace
        into the freshly-minted context.  A retried attempt parents
        under the failed attempt's span — the failover promotion then
        reads directly off the tree shape.
        """

        def trace_element(envelope, proceed):
            if not self.enabled:
                return proceed()
            context = envelope.request.context
            ctx = context.get(TRACE_KEY) if isinstance(context, dict) else None
            if not ctx:
                return proceed()
            parent = getattr(envelope, "_trace_retry_parent", None)
            span = self._open(
                ctx["trace_id"],
                parent or ctx["span_id"],
                envelope.label or envelope.request.operation,
                "hop",
                envelope.target,
                envelope.attempt,
            )
            if envelope.attempt:
                span.add_event({"event": "retry", "attempt": envelope.attempt})
            if envelope.label is None:
                members = _batch_members(envelope)
                if members is not None:
                    span.add_event({"event": "batch", "members": members})
            # downstream (the serving node's bus, nested servant calls)
            # parents under this hop
            context[TRACE_KEY] = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
            }
            self._push(span)
            try:
                result = proceed()
            except Exception as exc:
                span.status = "error"
                span.error = type(exc).__name__
                if will_retry(envelope, exc):
                    # the redelivery becomes this span's child
                    envelope._trace_retry_parent = span.span_id
                raise
            else:
                span.status = "ok"
                return result
            finally:
                self._close(span)

        return trace_element

    def bus_element(self, node_name: str):
        """Bus-chain element: one span per servant dispatch on a node.

        The parent comes from the bus request's own context or — for
        dispatches issued inside a delivery (the common path) — from the
        thread's delivery context, which the federation hop stamped.
        The bus terminal converts servant errors to wire responses, so
        status is read off the Response rather than an exception.
        """

        def bus_trace_element(envelope, proceed):
            if not self.enabled:
                return proceed()
            context = envelope.request.context
            ctx = context.get(TRACE_KEY) if isinstance(context, dict) else None
            if not ctx:
                ctx = delivery_context_value(TRACE_KEY)
            if not ctx:
                return proceed()
            span = self._open(
                ctx["trace_id"],
                ctx["span_id"],
                envelope.request.operation,
                "bus",
                node_name,
                envelope.attempt,
            )
            self._push(span)
            try:
                response = proceed()
            except Exception as exc:
                span.status = "error"
                span.error = type(exc).__name__
                raise
            else:
                if getattr(response, "is_error", False):
                    span.status = "error"
                    span.error = response.error_type
                else:
                    span.status = "ok"
                return response
            finally:
                self._close(span)

        return bus_trace_element

    # -- queries ---------------------------------------------------------------

    def spans(self) -> List[Span]:
        # appends are lock-free, so a concurrent writer can invalidate
        # the copy's iterator mid-snapshot; just take it again
        while True:
            try:
                return list(self._spans)
            except RuntimeError:  # pragma: no cover - needs a racing writer
                continue

    def trace(self, trace_id: str) -> List[Span]:
        return [s for s in self.spans() if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def trace_tree(self, trace_id: str) -> List[Dict[str, Any]]:
        """The trace's spans as nested ``{span, children}`` dicts.

        Spans whose parent never landed in the buffer (sampling races,
        ring overflow) surface as extra roots rather than vanishing.
        """
        spans = self.trace(trace_id)
        by_id = {s.span_id: s for s in spans}
        children: Dict[Optional[str], List[Span]] = {}
        for span in spans:
            parent = span.parent_id if span.parent_id in by_id else None
            children.setdefault(parent, []).append(span)

        def build(span: Span) -> Dict[str, Any]:
            return {
                "span": span.to_dict(),
                "children": [
                    build(child)
                    for child in sorted(
                        children.get(span.span_id, []), key=lambda s: s.start_s
                    )
                ],
            }

        roots = sorted(children.get(None, []), key=lambda s: s.start_s)
        return [build(root) for root in roots]

    def critical_path(self, trace_id: str) -> List[Span]:
        """Root-to-leaf chain following the slowest child at each level."""
        spans = self.trace(trace_id)
        if not spans:
            return []
        by_parent: Dict[Optional[str], List[Span]] = {}
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            parent = span.parent_id if span.parent_id in by_id else None
            by_parent.setdefault(parent, []).append(span)
        roots = by_parent.get(None, [])
        path: List[Span] = []
        cursor: Optional[Span] = max(roots, key=lambda s: s.duration_s, default=None)
        while cursor is not None:
            path.append(cursor)
            below = by_parent.get(cursor.span_id, [])
            cursor = max(below, key=lambda s: s.duration_s, default=None)
        return path

    def slowest(self, n: int = 5) -> List[str]:
        """Trace ids ranked by their slowest span, descending."""
        worst: Dict[str, float] = {}
        for span in self.spans():
            if span.duration_s > worst.get(span.trace_id, -1.0):
                worst[span.trace_id] = span.duration_s
        ranked = sorted(worst, key=lambda t: worst[t], reverse=True)
        return ranked[:n]

    def erroring(self, n: int = 5) -> List[str]:
        """Trace ids containing at least one error span (newest last)."""
        seen: Dict[str, None] = {}
        for span in self.spans():
            if span.status == "error":
                seen.setdefault(span.trace_id, None)
        return list(seen)[-n:]

    def export(self) -> Dict[str, Any]:
        spans = self.spans()
        return {
            "span_count": len(spans),
            "dropped": self.dropped,
            "slow_spans": self.slow_count,
            "slowest": self.slowest(),
            "erroring": self.erroring(),
            "spans": [s.to_dict() for s in spans],
        }

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self._finished = 0
            self.slow_count = 0


def _batch_members(envelope) -> Optional[List[str]]:
    """Labels of a pipelined batch's member calls, if this is one.

    The batch envelope carries its member labels as the request args
    (see ``Federation._submit_batch``)."""
    request = envelope.request
    if getattr(request, "operation", None) != "<batch>":
        return None
    return [label for label in request.args if label is not None]
