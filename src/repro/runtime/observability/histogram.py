"""Log-bucketed latency histogram: percentiles at fixed memory.

Replaces the unbounded per-series latency list.  Values are counted in
geometrically-spaced buckets with growth factor ``GROWTH``; a percentile
query walks the bucket counts to the nearest-rank bucket and reports its
geometric midpoint, so the estimate is within ``sqrt(GROWTH) - 1``
relative error of the exact nearest-rank sample (< 0.75% at the default
1.015 growth, comfortably inside the 1% budget) while memory stays a
fixed ``BUCKETS``-slot array no matter how many samples land.

The exact minimum and maximum are tracked alongside, so the extreme
percentiles (p0/p100) and single-sample series stay exact, and the mean
is computed from the exact running sum rather than bucket midpoints.
"""

from __future__ import annotations

import math
from typing import Dict, List

#: bucket growth factor; max relative error is sqrt(GROWTH) - 1
GROWTH = 1.015
#: trackable value range in seconds (100 ns .. 2 min); values outside
#: are clamped into the edge buckets but min/max stay exact
MIN_TRACKED = 1e-7
MAX_TRACKED = 120.0

_LOG_GROWTH = math.log(GROWTH)
_SQRT_GROWTH = math.sqrt(GROWTH)
#: interior buckets covering [MIN_TRACKED, MAX_TRACKED) plus an
#: underflow bucket (index 0) and an overflow bucket (last index)
BUCKETS = int(math.ceil(math.log(MAX_TRACKED / MIN_TRACKED) / _LOG_GROWTH)) + 2


class LogHistogram:
    """Fixed-memory histogram of non-negative samples (seconds)."""

    __slots__ = ("counts", "count", "total", "min_seen", "max_seen")

    def __init__(self):
        self.counts: List[int] = [0] * BUCKETS
        self.count = 0
        self.total = 0.0
        self.min_seen = math.inf
        self.max_seen = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min_seen:
            self.min_seen = seconds
        if seconds > self.max_seen:
            self.max_seen = seconds
        self.counts[self._index(seconds)] += 1

    @staticmethod
    def _index(seconds: float) -> int:
        if seconds < MIN_TRACKED:
            return 0
        if seconds >= MAX_TRACKED:
            return BUCKETS - 1
        index = 1 + int(math.log(seconds / MIN_TRACKED) / _LOG_GROWTH)
        # float rounding at bucket edges may land one off; clamp interior
        return max(1, min(BUCKETS - 2, index))

    @staticmethod
    def _midpoint(index: int) -> float:
        if index <= 0:
            return MIN_TRACKED
        if index >= BUCKETS - 1:
            return MAX_TRACKED
        return MIN_TRACKED * (GROWTH ** (index - 1)) * _SQRT_GROWTH

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile estimate (seconds)."""
        if not self.count:
            return 0.0
        rank = max(0, min(self.count - 1, math.ceil(fraction * self.count) - 1))
        seen = 0
        for index, bucket in enumerate(self.counts):
            if not bucket:
                continue
            seen += bucket
            if seen > rank:
                # the edge buckets hold out-of-range samples: report the
                # exact extreme instead of the (clamped) range boundary
                if index == 0:
                    return self.min_seen
                if index == BUCKETS - 1:
                    return self.max_seen
                estimate = self._midpoint(index)
                return min(self.max_seen, max(self.min_seen, estimate))
        return self.max_seen

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean(),
            "min_s": self.min_seen if self.count else 0.0,
            "max_s": self.max_seen,
            "buckets": BUCKETS,
        }
