"""Gauge board: last-value-wins instruments with bounded history.

Gauges capture *levels* (queue depth, in-flight requests, replica lag)
rather than event counts.  Each ``set`` records the new value into a
bounded per-gauge time series, so a sampled gauge doubles as a coarse
trend line across membership events without unbounded growth.
"""

from __future__ import annotations

from repro.analysis.witness import named_lock
from collections import deque
from typing import Dict, List, Optional, Tuple


class _Gauge:
    __slots__ = ("samples", "last", "max")

    def __init__(self, capacity: int):
        self.samples: deque = deque(maxlen=capacity)
        self.last: float = 0.0
        self.max: float = 0.0


class GaugeBoard:
    """Thread-safe named gauges with bounded sample history."""

    def __init__(self, capacity: int = 256):
        self._lock = named_lock("observability.gauges")
        self._capacity = max(1, int(capacity))
        self._gauges: Dict[str, _Gauge] = {}  # guarded_by: _lock
        self._tick = 0  # guarded_by: _lock

    def set(self, name: str, value: float) -> None:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = _Gauge(self._capacity)
            self._tick += 1
            gauge.samples.append((self._tick, value))
            gauge.last = value
            if value > gauge.max:
                gauge.max = value

    def get(self, name: str) -> Optional[float]:
        with self._lock:
            gauge = self._gauges.get(name)
            return gauge.last if gauge else None

    def series(self, name: str) -> List[Tuple[int, float]]:
        with self._lock:
            gauge = self._gauges.get(name)
            return list(gauge.samples) if gauge else []

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                name: {
                    "last": gauge.last,
                    "max": gauge.max,
                    "samples": len(gauge.samples),
                }
                for name, gauge in sorted(self._gauges.items())
            }
