"""Bounded structured event log for federation lifecycle events.

Every membership or control-plane transition (join/retire/kill/
failover/migration/reconcile/fault-armed/...) is appended as a JSON-
shaped record with a monotonic sequence number.  The log is a bounded
ring: old records fall off the front once ``capacity`` is exceeded, but
sequence numbers keep counting so consumers can detect the gap.
"""

from __future__ import annotations

from repro.analysis.witness import named_lock
import time
from collections import deque
from typing import Any, Dict, List, Optional


class EventLog:
    """Thread-safe bounded log of structured events."""

    def __init__(self, capacity: int = 1024):
        self._lock = named_lock("observability.events")
        self._records: deque = deque(maxlen=max(1, int(capacity)))
        self._seq = 0  # guarded_by: _lock
        self.dropped = 0  # guarded_by: _lock

    @property
    def capacity(self) -> int:
        return self._records.maxlen

    def set_capacity(self, capacity: int) -> None:
        """Live-retune the ring size, keeping the newest records."""
        with self._lock:
            kept = deque(self._records, maxlen=max(1, int(capacity)))
            self.dropped += len(self._records) - len(kept)
            self._records = kept

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        record = dict(fields)
        record["kind"] = kind
        record["ts"] = round(time.time(), 6)
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            if len(self._records) == self._records.maxlen:
                self.dropped += 1
            self._records.append(record)
        return record

    def records(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self._records)
        if kind is not None:
            records = [r for r in records if r["kind"] == kind]
        return records

    def last(self, kind: Optional[str] = None) -> Optional[Dict[str, Any]]:
        records = self.records(kind)
        return records[-1] if records else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
