"""Scenario harness: build a federation, drive seeded clients, verify.

The harness turns a :class:`~repro.runtime.scenarios.Scenario` into a
run:

1. build an N-node federation (serial or concurrent dispatchers);
2. deploy the scenario's configured application on every node and create
   its entities on their home shards;
3. optionally arm the scenario's fault campaign (pattern sites applied
   to the transport and to every node);
4. run M clients, each with its own seeded RNG, so every client's
   operation stream is reproducible regardless of interleaving — in
   sequential mode the whole run is deterministic and
   :meth:`ScenarioResult.digest` is stable across repeats;
5. join, snapshot metrics, and check the scenario's invariants against
   the servants' actual state.

Closed-loop clients: each client issues its next operation as soon as the
previous one completes.  ``think_time_ms`` models user pacing (an open
holdoff between operations).

Open-loop runs: with :attr:`RunConfig.open_loop` the clients are not
scripted threads but simulated users driven by the
:class:`~repro.runtime.load.OpenLoopDriver` on a virtual-time scheduler —
an arrival schedule offers operations regardless of completions, Zipf
popularity heats a few shards, and bounded-lateness admission sheds what
the SLO already lost.  ``think_time_ms`` is rejected there: pacing is
the schedule's job, and a think-time would quietly re-close the loop.

Churn: with ``RunConfig.churn`` the scenario's churn plan (membership
events — node kill, live join, graceful retire) fires at fixed points
in the issued-op stream: between operations on the sequential driver's
single thread (so a fixed seed fixes the interleaving and the digest),
from a monitor thread watching the shared op counter on the concurrent
driver.  Events whose threshold is never reached fire after the last
client op, so a plan always completes.

Asynchronous scenarios: a pick thunk may return an
:class:`~repro.runtime.scenarios.AsyncOp` instead of ``None`` — the
harness then keeps up to ``window`` replies in flight per client,
resolving the oldest future (and attributing its outcome to the issuing
operation's label) whenever the window fills, and drains every pending
future and oneway delivery (``federation.quiesce``) before invariants
are checked — so money-conservation-style oracles always see a settled
system, never a half-landed batch.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.analysis.witness import named_condition
from repro.errors import InvocationTimeout, ReproError, ScenarioError
from repro.runtime.federation import Federation, FederationClient
from repro.runtime.metrics import MetricsRegistry, format_series_table
from repro.runtime.scenarios import (
    AsyncOp,
    Scenario,
    attach_late_success,
    get_scenario,
)


@dataclass
class RunConfig:
    """Everything that parameterizes one scenario run."""

    scenario: str
    nodes: int = 3
    clients: int = 8
    ops: int = 400
    seed: int = 1
    workers: int = 4
    concurrent: bool = True
    sim_latency_ms: float = 0.5
    real_latency_ms: float = 0.0
    think_time_ms: float = 0.0
    faults: bool = False
    entities_per_node: int = 2
    #: max in-flight async replies per client before the oldest is resolved
    window: int = 4
    #: delivery threads of the federation's queued (async) transport
    delivery_workers: int = 2
    #: how routed hops travel: "inproc" (caller thread), "queued"
    #: (delivery threads), or "socket" (every hop crosses a real wire
    #: connection to the owner node's listener).  The default never
    #: enters the spec digest, so inproc runs hash as they always did
    transport: str = "inproc"
    #: arm the scenario's churn plan (node kill / join / retire mid-run)
    churn: bool = False
    #: override the scenario's replication machinery ("full" | "log");
    #: None keeps the scenario's declared mode
    replication_mode: Optional[str] = None
    #: digest of the DeploymentSpec this run builds from (set by the
    #: runner for spec-declared scenarios; None on the legacy path) —
    #: scenario digests include it, so topology drift changes the digest
    spec_digest: Optional[str] = None
    #: the deployment's replication policy (count/mode/snapshot_every;
    #: set by the runner for spec-declared scenarios) — surfaced by
    #: ``simulate --describe`` so replication-path drift is visible
    #: before a run, and folded into the spec digest above
    replication: Optional[Dict[str, Any]] = None
    #: enable distributed tracing for this run.  A *run-level* toggle on
    #: purpose: the deployment spec (and therefore ``spec_digest``) is
    #: identical traced and untraced, so turning tracing on can never
    #: move a scenario digest
    trace: bool = False
    #: the deployment's observability knobs (sample rate, slow-call
    #: threshold, ring capacities; set by the runner for spec-declared
    #: scenarios) — surfaced by ``simulate --describe``
    observability: Optional[Dict[str, Any]] = None
    #: open-loop driving: None = closed-loop clients; a dict (possibly
    #: empty) switches the run to the virtual-time open-loop driver and
    #: overrides its knobs (users, arrival, zipf_s, max_lateness_ms,
    #: service_time_ms, sample_every_ms, max_shed_fraction).  ``ops`` is
    #: then the total *offered* arrivals, and ``clients`` only sizes the
    #: connection pool the simulated users share
    open_loop: Optional[Dict[str, Any]] = None

    def describe(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "nodes": self.nodes,
            "clients": self.clients,
            "ops": self.ops,
            "seed": self.seed,
            "workers": self.workers,
            "concurrent": self.concurrent,
            "sim_latency_ms": self.sim_latency_ms,
            "real_latency_ms": self.real_latency_ms,
            "think_time_ms": self.think_time_ms,
            "faults": self.faults,
            "entities_per_node": self.entities_per_node,
            "window": self.window,
            "delivery_workers": self.delivery_workers,
            "transport": self.transport,
            "churn": self.churn,
            "spec_digest": self.spec_digest,
            "replication": self.replication,
            "trace": self.trace,
            "observability": self.observability,
            "open_loop": (
                None
                if self.open_loop is None
                # a schedule object override serializes as its spec dict
                else {
                    key: value.to_dict() if hasattr(value, "to_dict") else value
                    for key, value in sorted(self.open_loop.items())
                }
            ),
        }


@dataclass
class ScenarioResult:
    """Outcome of one run: counts, metrics, invariants, fingerprint."""

    scenario: str
    config: Dict[str, Any]
    duration_s: float
    ops: int
    succeeded: int
    failed: int
    outcomes: Dict[str, Dict[str, int]]
    metrics: Dict[str, Any]
    federation_stats: Dict[str, Any]
    invariant_violations: List[str]
    faults_injected: Dict[str, int] = field(default_factory=dict)
    fingerprint: List[str] = field(default_factory=list)
    #: the observability export (spans, events, gauges) of a traced run;
    #: None when the run was untraced.  Never part of :meth:`digest` —
    #: timing-shaped data must not perturb outcome hashes
    trace: Optional[Dict[str, Any]] = None
    #: the open-loop :class:`~repro.runtime.load.LoadReport` as a dict
    #: (None on closed-loop runs).  Its *counts* already reach the
    #: digest through ``outcomes`` (shed rides each label); the latency
    #: summaries themselves stay out of the hash — virtual-time numbers
    #: are deterministic, but wall-clock-adjacent fields must never be
    open_loop: Optional[Dict[str, Any]] = None

    @property
    def passed(self) -> bool:
        return not self.invariant_violations

    @property
    def throughput_ops_s(self) -> float:
        return self.ops / self.duration_s if self.duration_s > 0 else 0.0

    def digest(self) -> str:
        """Stable hash of the run's observable outcome (not its timing).

        Deterministic for sequential runs with a fixed seed; concurrent
        runs may legitimately vary with thread interleaving.
        """
        canon = json.dumps(
            {
                "scenario": self.scenario,
                "outcomes": self.outcomes,
                "fingerprint": self.fingerprint,
                # topology drift detection: two runs with identical
                # outcomes but different deployment specs must not
                # collide on one digest
                "spec": self.config.get("spec_digest"),
            },
            sort_keys=True,
        )
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def replication_summary(self) -> Optional[Dict[str, Any]]:
        """The run's replication-path counters (None when disabled):
        syncs performed/skipped, log appends, snapshot+truncate cycles,
        and the current/max replica lag watermark deficits."""
        stats = self.federation_stats.get("replication")
        if not stats:
            return None
        return {
            "mode": stats.get("mode"),
            "syncs": stats.get("syncs"),
            "skipped_syncs": stats.get("skipped_syncs"),
            "log_appends": stats.get("log_appends"),
            "snapshots": stats.get("snapshots"),
            "replica_lag": stats.get("replica_lag"),
            "max_replica_lag": stats.get("max_replica_lag"),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "config": self.config,
            "duration_s": self.duration_s,
            "ops": self.ops,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "throughput_ops_s": self.throughput_ops_s,
            "outcomes": self.outcomes,
            "metrics": self.metrics,
            "federation": self.federation_stats,
            "replication": self.replication_summary(),
            "invariant_violations": self.invariant_violations,
            "faults_injected": self.faults_injected,
            "fingerprint": self.fingerprint,
            "trace": self.trace,
            "open_loop": self.open_loop,
            "digest": self.digest(),
            "passed": self.passed,
        }

    def report(self) -> str:
        lines = [
            f"scenario {self.scenario}: {self.ops} ops over "
            f"{self.config['nodes']} node(s), {self.config['clients']} client(s) "
            f"({'concurrent' if self.config['concurrent'] else 'sequential'})",
            f"  duration:   {self.duration_s:.3f}s"
            f"   throughput: {self.throughput_ops_s:.0f} ops/s",
            f"  succeeded:  {self.succeeded}   failed: {self.failed}",
        ]
        if self.open_loop:
            load = self.open_loop
            goodput = load["goodput"]
            response = load["response"]
            lines.append(
                f"  open-loop:  offered {load['offered']}"
                f"  ok {load['completed_ok']}  failed {load['failed']}"
                f"  shed {load['shed']} ({load['shed_fraction']:.1%})"
            )
            lines.append(
                f"  goodput:    {goodput['goodput_ops_s']:.0f} ops/s of "
                f"{goodput['offered_ops_s']:.0f} offered "
                f"({goodput['goodput_fraction']:.1%}) over "
                f"{load['virtual_duration_ms'] / 1000.0:.2f}s virtual"
            )
            lines.append(
                f"  response:   p50 {response['p50_ms']:.3f}  "
                f"p99 {response['p99_ms']:.3f}  "
                f"p99.9 {response['p999_ms']:.3f}  "
                f"max {response['max_ms']:.3f} ms  "
                f"(SLO {load['slo_ms']:.3f} ms)"
            )
        ops = self.metrics.get("operations", {})
        if ops:
            lines.extend(format_series_table(ops, indent="  "))
        routed = self.federation_stats.get("routed", {})
        if routed:
            share = ", ".join(f"{node}={count}" for node, count in routed.items())
            lines.append(f"  routing:    {share}")
        replication = self.replication_summary()
        if replication:
            lines.append(
                f"  replication: {replication['mode']} mode, "
                f"{replication['syncs']} sync(s), "
                f"{replication['skipped_syncs']} skipped, "
                f"{replication['log_appends']} append(s), "
                f"{replication['snapshots']} snapshot(s), "
                f"max lag {replication['max_replica_lag']}"
            )
        if self.faults_injected:
            injected = ", ".join(
                f"{site}={count}"
                for site, count in sorted(self.faults_injected.items())
            )
            lines.append(f"  faults:     {injected}")
        if self.invariant_violations:
            lines.append("  INVARIANT VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.invariant_violations)
        else:
            lines.append("  invariants: OK")
        return "\n".join(lines)


class ScenarioRunner:
    """Builds the federation and drives one scenario run."""

    def __init__(self, scenario, config: RunConfig):
        self.spec: Scenario = (
            get_scenario(scenario) if isinstance(scenario, str) else scenario
        )
        self.config = config
        if config.clients < 1:
            raise ScenarioError("need at least one client")
        if config.nodes < 1:
            raise ScenarioError("need at least one node")
        if config.ops < 1:
            raise ScenarioError("need at least one operation")
        if config.concurrent and config.workers < 1:
            raise ScenarioError(
                "concurrent dispatch needs workers >= 1 (use --serial for "
                "the sequential baseline)"
            )
        if config.open_loop is not None:
            if config.think_time_ms > 0:
                raise ScenarioError(
                    "think_time_ms is closed-loop pacing (each client waits "
                    "between its own operations); an open-loop run's pacing "
                    "is the arrival schedule — drop think_time_ms or drop "
                    "open_loop"
                )
            # effective knobs = driver defaults < scenario tuning < run block
            config.open_loop = {
                **self.spec.open_loop_defaults,
                **config.open_loop,
            }
        elif self.spec.requires_open_loop:
            raise ScenarioError(
                f"scenario {self.spec.name!r} is open-loop only (its oracle "
                "judges a load report) — run it with --open-loop"
            )
        #: the declarative deployment of this run (None = legacy scenario)
        self.deployment = self.spec.deployment_spec(config)
        if self.deployment is not None:
            config.spec_digest = self.deployment.digest()
            config.replication = self.deployment.replication.to_dict()
            config.observability = self.deployment.observability.to_dict()

    # -- construction -----------------------------------------------------------

    def build(self) -> Federation:
        """Materialize the run's federation.

        Spec-declared scenarios (all six built-ins) compile their
        :class:`~repro.deploy.DeploymentSpec` through the
        :class:`~repro.deploy.DeploymentCompiler` — topology, woven
        application, servants, users, read-only classification, QoS
        defaults, fault campaign, and replication all come from the
        spec.  Scenarios without a layout fall back to the imperative
        build the harness used before the deployment subsystem existed.
        """
        config = self.config
        if self.deployment is not None:
            from repro.deploy.compiler import DeploymentCompiler

            federation = DeploymentCompiler().deploy(
                self.deployment, metrics=MetricsRegistry()
            )
            if config.trace:
                federation.observability.enable_tracing()
            return federation
        federation = Federation(
            seed=config.seed,
            latency_ms=config.sim_latency_ms,
            real_latency_s=config.real_latency_ms / 1000.0,
            metrics=MetricsRegistry(),
            delivery_workers=config.delivery_workers,
            transport=config.transport,
        )
        for i in range(config.nodes):
            federation.add_node(
                f"node-{i}",
                workers=config.workers if config.concurrent else 0,
                seed=config.seed * 31 + i,
            )
        self.spec.deploy(federation, config)
        for user, password, roles in self.spec.users:
            federation.add_user(user, password, roles=roles)
        if self.spec.replica_count > 0:
            federation.enable_replication(
                self.spec.replica_count,
                mode=config.replication_mode or self.spec.replication_mode,
                snapshot_every=self.spec.replication_snapshot_every,
            )
        if config.trace:
            federation.observability.enable_tracing()
        return federation

    def _client_rng(self, client_index: int) -> random.Random:
        return random.Random(self.config.seed * 1_000_003 + 7_919 * client_index)

    def _budgets(self) -> List[int]:
        config = self.config
        base, extra = divmod(config.ops, config.clients)
        return [base + (1 if i < extra else 0) for i in range(config.clients)]

    # -- execution ----------------------------------------------------------------

    def run(self) -> ScenarioResult:
        config = self.config
        federation = self.build()
        try:
            state = self.spec.setup(federation, config)
            if config.faults and federation.spec is None:
                # legacy path only: spec-compiled federations had their
                # campaign armed by the compiler (FaultCampaignSpec.armed)
                for site, probability in self.spec.fault_campaign:
                    federation.configure_fault(site, probability)
            self._issued = 0
            self._issued_cond = named_condition("harness.issued")
            #: per-client op counters feeding deterministic trace ids
            self._op_counts = [0] * config.clients
            self._churn: List[Tuple[int, str, Any]] = []
            if config.churn:
                self._churn = sorted(
                    self.spec.churn_plan(config), key=lambda event: event[0]
                )
                if not self._churn:
                    raise ScenarioError(
                        f"scenario {self.spec.name!r} has no churn plan "
                        "(--churn needs one)"
                    )
            clients = []
            for i in range(config.clients):
                user = self.spec.client_user(i)
                clients.append(
                    FederationClient(
                        federation,
                        *(user or (None, None)),
                        qos=self.spec.client_qos,
                    )
                )
            rngs = [self._client_rng(i) for i in range(config.clients)]
            outcomes: List[Dict[str, Dict[str, int]]] = [
                {} for _ in range(config.clients)
            ]
            budgets = self._budgets()

            federation.metrics.start()
            load_report = None
            if config.open_loop is not None:
                from repro.runtime.load import OpenLoopDriver

                load_report = OpenLoopDriver(
                    federation, self.spec, state, config, clients
                ).run()
            elif config.concurrent:
                self._run_concurrent(federation, state, clients, rngs, outcomes, budgets)
            else:
                self._run_sequential(federation, state, clients, rngs, outcomes, budgets)
            # settle the system before measuring or judging it: every
            # oneway and stray async delivery must land first
            if not federation.quiesce(timeout_s=60.0):
                raise ScenarioError(
                    "asynchronous deliveries did not quiesce within 60s"
                )
            federation.observability.sample(federation)
            federation.metrics.stop()

            if load_report is not None:
                merged = load_report.outcomes
            else:
                merged = self._merge_outcomes(outcomes)
            succeeded = sum(r.get("ok", 0) for r in merged.values())
            failed = sum(
                count
                for results in merged.values()
                for key, count in results.items()
                if key != "ok"
            )
            return ScenarioResult(
                scenario=self.spec.name,
                config=config.describe(),
                duration_s=federation.metrics.elapsed_s(),
                ops=succeeded + failed,
                succeeded=succeeded,
                failed=failed,
                outcomes=merged,
                metrics=federation.metrics.snapshot(),
                federation_stats=federation.stats(),
                invariant_violations=self.spec.invariants(federation, state),
                faults_injected=federation.faults_injected(),
                fingerprint=self.spec.fingerprint(federation, state),
                trace=(
                    federation.observability.export(federation.metrics)
                    if config.trace
                    else None
                ),
                open_loop=(
                    load_report.to_dict() if load_report is not None else None
                ),
            )
        finally:
            federation.shutdown()

    def _step(
        self, federation, state, client, rng, outcome, client_index
    ) -> Optional[Tuple[str, AsyncOp]]:
        """Issue one operation; async issues come back as pending entries."""
        label, thunk = self.spec.pick(rng, federation, state, client, client_index)
        results = outcome.setdefault(label, {})
        pending: Optional[Tuple[str, AsyncOp]] = None
        tracer = federation.observability.tracer
        op_index = self._op_counts[client_index]
        self._op_counts[client_index] = op_index + 1
        try:
            with tracer.client_span(
                label,
                tracer.trace_id_for(self.config.seed, client_index, op_index),
            ):
                value = thunk()
        except ReproError as exc:
            key = type(exc).__name__
            results[key] = results.get(key, 0) + 1
        else:
            if isinstance(value, AsyncOp):
                # outcome attributed at resolution time, not issue time
                pending = (label, value)
            else:
                results["ok"] = results.get("ok", 0) + 1
        if self.config.think_time_ms > 0:
            import time

            time.sleep(self.config.think_time_ms / 1000.0)
        return pending

    @staticmethod
    def _resolve(entry: Tuple[str, AsyncOp], outcome) -> None:
        """Wait for one in-flight reply; count it under its own label.

        The wait honours the op's timeout (falling back to the
        envelope's QoS timeout).  A timed-out call counts as failed, but
        its success bookkeeping is re-attached as a done-callback: if
        the delivery lands after all (before the harness quiesces), the
        scenario's tallies still agree with the servant state —
        timeouts must never fake a lost effect.
        """
        label, op = entry
        results = outcome.setdefault(label, {})
        try:
            if op.timeout_ms is None:
                value = op.future.result()
            else:
                value = op.future.result(timeout_ms=op.timeout_ms)
        except InvocationTimeout as exc:
            if op.on_success is not None:
                attach_late_success(op.future, op.on_success)
            key = type(exc).__name__
            results[key] = results.get(key, 0) + 1
        except ReproError as exc:
            key = type(exc).__name__
            results[key] = results.get(key, 0) + 1
        else:
            if op.on_success is not None:
                op.on_success(value)
            results["ok"] = results.get("ok", 0) + 1

    def _client_step(
        self,
        federation,
        state,
        client,
        rng,
        outcome,
        index: int,
        pending: "Deque[Tuple[str, AsyncOp]]",
    ) -> None:
        entry = self._step(federation, state, client, rng, outcome, index)
        with self._issued_cond:
            self._issued += 1
            self._issued_cond.notify_all()
        if entry is not None:
            pending.append(entry)
        while len(pending) > self.config.window:
            self._resolve(pending.popleft(), outcome)

    def _drain(self, pending, outcome) -> None:
        while pending:
            self._resolve(pending.popleft(), outcome)

    # -- churn (membership events scripted by the scenario) -----------------------

    def _fire_due_churn(self, federation, state) -> None:
        """Run every churn event whose op threshold has been reached.

        Called between operations on the sequential driver's one thread,
        so a fixed seed gives a fixed interleaving of ops and membership
        events — the digest-determinism the elastic scenario asserts.
        """
        while self._churn and self._issued >= self._churn[0][0]:
            _at, _label, action = self._churn.pop(0)
            action(federation, state)
            # membership events are exactly when levels move: sample the
            # gauges at each churn edge so the time series brackets it
            federation.observability.sample(federation)

    def _finish_churn(self, federation, state) -> None:
        """Fire any event whose threshold was never reached (op budget
        smaller than the plan expected) so the plan always completes."""
        while self._churn:
            _at, _label, action = self._churn.pop(0)
            action(federation, state)
            federation.observability.sample(federation)

    def _run_sequential(
        self, federation, state, clients, rngs, outcomes, budgets
    ) -> None:
        """Round-robin the clients' scripts on one thread (deterministic
        for synchronous scenarios; async replies land on delivery threads)."""
        remaining = list(budgets)
        pendings: List[Deque[Tuple[str, AsyncOp]]] = [
            deque() for _ in range(self.config.clients)
        ]
        while any(remaining):
            for i in range(self.config.clients):
                if remaining[i] > 0:
                    self._fire_due_churn(federation, state)
                    remaining[i] -= 1
                    self._client_step(
                        federation, state, clients[i], rngs[i], outcomes[i], i,
                        pendings[i],
                    )
        self._finish_churn(federation, state)
        for i in range(self.config.clients):
            self._drain(pendings[i], outcomes[i])

    def _run_concurrent(
        self, federation, state, clients, rngs, outcomes, budgets
    ) -> None:
        errors: List[BaseException] = []
        clients_done = threading.Event()

        def churn_loop() -> None:
            try:
                for at, _label, action in list(self._churn):
                    with self._issued_cond:
                        self._issued_cond.wait_for(
                            lambda: self._issued >= at or clients_done.is_set()
                        )
                    action(federation, state)
                    federation.observability.sample(federation)
                self._churn = []
            except BaseException as exc:  # noqa: BLE001 - surfaced after join
                errors.append(exc)

        def loop(i: int) -> None:
            pending: Deque[Tuple[str, AsyncOp]] = deque()
            try:
                for _ in range(budgets[i]):
                    self._client_step(
                        federation, state, clients[i], rngs[i], outcomes[i], i,
                        pending,
                    )
                self._drain(pending, outcomes[i])
            except BaseException as exc:  # noqa: BLE001 - surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=loop, args=(i,), name=f"client-{i}")
            for i in range(self.config.clients)
        ]
        churn_thread = None
        if self._churn:
            churn_thread = threading.Thread(target=churn_loop, name="churn")
            churn_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        clients_done.set()
        with self._issued_cond:
            self._issued_cond.notify_all()
        if churn_thread is not None:
            churn_thread.join()
        if errors:
            raise errors[0]

    @staticmethod
    def _merge_outcomes(outcomes) -> Dict[str, Dict[str, int]]:
        merged: Dict[str, Dict[str, int]] = {}
        for outcome in outcomes:
            for label, results in outcome.items():
                into = merged.setdefault(label, {})
                for key, count in results.items():
                    into[key] = into.get(key, 0) + count
        return {
            label: dict(sorted(results.items()))
            for label, results in sorted(merged.items())
        }


def run_scenario(
    scenario,
    nodes: int = 3,
    clients: int = 8,
    ops: int = 400,
    seed: int = 1,
    workers: int = 4,
    concurrent: bool = True,
    sim_latency_ms: float = 0.5,
    real_latency_ms: float = 0.0,
    think_time_ms: float = 0.0,
    faults: bool = False,
    entities_per_node: int = 2,
    window: int = 4,
    delivery_workers: int = 2,
    churn: bool = False,
    trace: bool = False,
    open_loop: Optional[Dict[str, Any]] = None,
) -> ScenarioResult:
    """One-call convenience over :class:`ScenarioRunner`."""
    name = scenario if isinstance(scenario, str) else scenario.name
    config = RunConfig(
        scenario=name,
        nodes=nodes,
        clients=clients,
        ops=ops,
        seed=seed,
        workers=workers,
        concurrent=concurrent,
        sim_latency_ms=sim_latency_ms,
        real_latency_ms=real_latency_ms,
        think_time_ms=think_time_ms,
        faults=faults,
        entities_per_node=entities_per_node,
        window=window,
        delivery_workers=delivery_workers,
        churn=churn,
        trace=trace,
        open_loop=open_loop,
    )
    return ScenarioRunner(scenario, config).run()
