"""Request dispatchers: sequential and thread-pool with per-servant locks.

A dispatcher decides *how* a node executes an incoming request:

* :class:`SerialDispatcher` runs the request inline on the calling
  thread — the seed's one-request-at-a-time behaviour, kept as the
  deterministic baseline;
* :class:`ConcurrentDispatcher` hands the request to a bounded worker
  pool (the classic ORB thread-pool model) and blocks the caller until
  the worker produces the result.

Both enforce **per-servant serialization**: at most one request executes
against a given servant key at any time (an :class:`threading.RLock` per
key).  Requests against *different* servants overlap freely, which is
where the throughput of the concurrent model comes from — transport
latency and blocking I/O of independent requests overlap instead of
queueing behind each other.

Nested dispatches (server code that calls back into the same node while
handling a request) execute inline on the current worker thread: routing
them through the bounded pool again could exhaust it and deadlock, and
the RLock makes re-entry on the same servant safe.  Nested calls that
enter through the ORB directly (proxy arguments hydrated server-side)
never reach :meth:`ConcurrentDispatcher.dispatch`; the node closes that
gap by installing :meth:`_DispatcherBase.serialize` as the bus's
``dispatch_guard``, so *every* delivery on the node holds the target
servant's lock.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, TypeVar

from repro.analysis.witness import named_lock, named_rlock
from repro.errors import MiddlewareError
from repro.middleware.transport import serving_request

T = TypeVar("T")

#: marks threads that are currently dispatcher workers — shared across
#: dispatchers, so a request that hops nodes mid-dispatch runs inline on
#: the remote node instead of blocking on another bounded pool (two
#: saturated pools waiting on each other would deadlock the federation)
_worker_local = threading.local()


class DispatchStats:
    """Thread-safe counters shared by both dispatcher flavours."""

    def __init__(self):
        self._lock = named_lock("dispatch.stats")
        self.dispatched = 0  # guarded_by: _lock
        self.errors = 0  # guarded_by: _lock
        self.in_flight = 0  # guarded_by: _lock
        self.max_in_flight = 0  # guarded_by: _lock

    def enter(self) -> None:
        with self._lock:
            self.dispatched += 1
            self.in_flight += 1
            if self.in_flight > self.max_in_flight:
                self.max_in_flight = self.in_flight

    def exit(self, error: bool) -> None:
        with self._lock:
            self.in_flight -= 1
            if error:
                self.errors += 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "dispatched": self.dispatched,
                "errors": self.errors,
                "in_flight": self.in_flight,
                "max_in_flight": self.max_in_flight,
            }


class _DispatcherBase:
    """Per-servant lock table + stats, shared by both dispatchers."""

    def __init__(self):
        self.stats = DispatchStats()
        self._servant_locks: Dict[str, threading.RLock] = {}
        self._locks_guard = named_lock("dispatch.locks_guard")

    def _servant_lock(self, key: str) -> threading.RLock:
        lock = self._servant_locks.get(key)
        if lock is None:
            with self._locks_guard:
                lock = self._servant_locks.setdefault(
                    key, named_rlock("dispatch.servant")
                )
        return lock

    def _run(self, key: str, fn: Callable[[], T]) -> T:
        self.stats.enter()
        error = False
        try:
            with self._servant_lock(key):
                return fn()
        except BaseException:
            error = True
            raise
        finally:
            self.stats.exit(error)

    def serialize(self, key: str, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the servant lock only (no pool, no stats).

        Installed as the bus's ``dispatch_guard`` so nested in-process
        deliveries — proxy calls that never pass through ``dispatch`` —
        still serialize per servant.  The lock is re-entrant, so a
        request re-entering its own servant cannot self-deadlock.
        """
        with self._servant_lock(key):
            return fn()

    def _run_into_future(self, key: str, fn: Callable[[], T]) -> "Future":
        """Run inline, packaging the outcome as an already-done future."""
        future: Future = Future()
        try:
            future.set_result(self._run(key, fn))
        except BaseException as exc:  # noqa: BLE001 - carried by the future
            future.set_exception(exc)
        return future

    def shutdown(self) -> None:  # pragma: no cover - overridden where needed
        """Release worker resources (no-op for the serial dispatcher)."""


class SerialDispatcher(_DispatcherBase):
    """Executes every request inline, one at a time per servant."""

    workers = 1

    def dispatch(self, servant_key: str, fn: Callable[[], T]) -> T:
        return self._run(servant_key, fn)

    def submit(self, servant_key: str, fn: Callable[[], T]) -> "Future":
        """Non-blocking dispatch API; serial execution resolves inline."""
        return self._run_into_future(servant_key, fn)


class ConcurrentDispatcher(_DispatcherBase):
    """Bounded worker pool with per-servant serialization.

    External callers block on a future while a pool worker executes the
    request; calls made *from* a worker (nested server-side invocations)
    run inline to keep the pool deadlock-free.
    """

    def __init__(self, workers: int = 4, name: str = "node"):
        super().__init__()
        if workers < 1:
            raise MiddlewareError(f"dispatcher needs >= 1 worker, got {workers}")
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"dispatch-{name}"
        )

    def dispatch(self, servant_key: str, fn: Callable[[], T]) -> T:
        if getattr(_worker_local, "in_worker", False):
            return self._run(servant_key, fn)
        return self._pool.submit(self._worker_run, servant_key, fn).result()

    def submit(self, servant_key: str, fn: Callable[[], T]) -> "Future":
        """Hand the request to the pool without blocking on its result.

        The asynchronous invocation path (batched pipelines, oneway
        deliveries) uses this to overlap per-servant work of one batch
        across the pool.  Calls from a worker thread run inline for the
        same reason nested ``dispatch`` does: a saturated pool waiting on
        itself would deadlock.
        """
        if getattr(_worker_local, "in_worker", False):
            return self._run_into_future(servant_key, fn)
        return self._pool.submit(self._worker_run, servant_key, fn)

    def _worker_run(self, servant_key: str, fn: Callable[[], T]) -> T:
        _worker_local.in_worker = True
        try:
            # pool workers also count as "serving a request": nested
            # asynchronous submissions made by the servant must deliver
            # inline rather than queue behind a possibly exhausted pool
            with serving_request():
                return self._run(servant_key, fn)
        finally:
            _worker_local.in_worker = False

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)
