"""Multi-process federation: worker node hosts + a wire-routing front-end.

This is the deployment shape the socket transport exists for: every
federation member is its *own operating-system process*, serving its
shard behind a :class:`~repro.middleware.sockets.WireServer`, and the
front-end routes envelopes to workers over real connections — true
parallel dispatch, one GIL per node.

Two halves, meeting only at the wire protocol:

* :func:`serve_node` — the worker process body (``repro.cli node
  serve``).  It starts empty: one :class:`~repro.runtime.node.Node`
  plus a listener.  Everything else arrives over CONTROL frames —
  the application ships as a serialized
  :class:`~repro.core.shipping.ComponentPackage` and is *replayed*
  against the worker's own services (the same ship-once/replay-per-node
  discipline in-process deployments use), servants bind from state
  dicts, snapshots stream back out for replication.  The worker never
  imports the deployment spec: partition placement is entirely the
  front-end's concern.

* :class:`ProcessFederation` — compiles an unchanged
  :class:`~repro.deploy.DeploymentSpec` (``transport: "socket"`` or
  not — the spec needs no edits), spawns one worker per
  :class:`~repro.deploy.spec.NodeSpec`, ships the package, binds
  servants on their ring owners, and then serves ``call`` /
  ``call_async`` / ``call_oneway`` through the *same interceptor
  chain shape the in-process federation runs* — metrics, tracing,
  fault injection, failover promotion, simulated latency, routing
  counters — terminating in a
  :class:`~repro.middleware.sockets.SocketTransport` round trip.

Failover works exactly like the in-process federation's, with the
standby state held front-end-side: every mutating call write-through
snapshots its partition out of the owner worker (a CONTROL round
trip), and when a worker process dies mid-call the pre-effect
:class:`~repro.errors.NodeDownError` trips the failover element, the
partitions promote onto the ring successor (their snapshots restored
over CONTROL ``bind``), and the QoS retry budget re-delivers the call
to the new owner.  Killing a *process* and killing a :class:`Node`
in-process are therefore the same observable event.

Known limits (by design, documented in docs/TRANSPORTS.md): worker-side
fault sites and pipelined batches are in-process-federation features;
the front-end injects faults client-side only and has no batch path.
"""

from __future__ import annotations

import contextlib
import fnmatch
import os
import select
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.witness import named_lock, named_rlock
from repro.errors import (
    DeploymentError,
    FederationError,
    NamingError,
    NodeDownError,
    ReproError,
)
from repro.middleware.bus import ObjectRefData, Request, marshal
from repro.middleware.clock import SimClock
from repro.middleware.envelope import (
    DEFAULT_QOS,
    ONEWAY_QOS,
    Envelope,
    InterceptorChain,
    QoS,
    ReplyFuture,
)
from repro.middleware.faults import FaultInjector
from repro.middleware.naming import NamingService
from repro.middleware.sockets import SocketTransport, WireServer
from repro.middleware.transport import LazyQueuedTransport, QueuedTransport
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.node import Node
from repro.runtime.observability import TRACE_KEY, Observability


# ---------------------------------------------------------------------------
# worker process body
# ---------------------------------------------------------------------------

#: stdout announcement prefix the spawner scans for
ANNOUNCE_PREFIX = "REPRO-NODE"


def _wire_ref(node: Node):
    """Marshalling hook for worker results: registered servants (and
    proxies to them) leave the process as :class:`ObjectRefData`."""
    from repro.middleware.rpc import RemoteProxy

    def ref_of(value):
        if isinstance(value, RemoteProxy):
            return value.ref
        found = node.services.orb.ref_of(value)
        if found is not None:
            return ObjectRefData(found.object_id, found.type_name)
        return None

    return ref_of


class NodeHost:
    """One worker's serving state: the node, its listener, its controls."""

    def __init__(
        self,
        name: str,
        workers: int = 0,
        seed: int = 0,
        endpoint: str = "tcp://127.0.0.1:0",
    ):
        self.node = Node(name, workers=workers, seed=seed)
        self._ref_of = _wire_ref(self.node)
        self.server = WireServer(
            node=name,
            request_handler=self._serve_request,
            control_handler=self._serve_control,
            endpoint=endpoint,
        )

    # -- requests ------------------------------------------------------------

    def _serve_request(self, envelope: Envelope) -> Any:
        """Dispatch one wire REQUEST against the local shard.

        The hop label carries the servant type (``Type.operation``), so
        the wire reference can be rebuilt without a naming lookup —
        the front-end already resolved the binding.  Arguments are wire
        values; the ORB hydrates embedded references against this
        worker's own registry during dispatch.
        """
        request = envelope.request
        type_name = (envelope.label or ".").rsplit(".", 1)[0]
        ref = ObjectRefData(request.object_id, type_name)
        result = self.node.invoke(
            ref,
            request.operation,
            tuple(request.args),
            dict(request.kwargs),
            dict(request.context),
        )
        return marshal(result, self._ref_of, root="result")

    # -- controls ------------------------------------------------------------

    def _serve_control(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        verb = payload.get("verb")
        handler = getattr(self, f"_control_{verb}", None)
        if handler is None:
            return {"error": f"unknown control verb {verb!r}"}
        try:
            return handler(payload)
        except ReproError as exc:
            return {"error": f"{type(exc).__name__}: {exc}"}

    def _control_ping(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return {"node": self.node.name, "pid": os.getpid()}

    def _control_deploy(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Replay a shipped ComponentPackage against this worker's own
        services and adopt the built application module."""
        from repro.core import replay
        from repro.core.shipping import ComponentPackage

        package = ComponentPackage.from_json(payload["package"])
        lifecycle = replay(package, services=self.node.services, verify=False)
        module = lifecycle.build_application(
            f"worker_{self.node.name.replace('-', '_')}"
        )
        self.node.host(lifecycle, module)
        for type_name, ops in payload.get("read_only", {}).items():
            self.node.services.bus.mark_read_only(type_name, frozenset(ops))
        return {"node": self.node.name, "application": module.__name__}

    def _control_bind(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Materialize one servant and bind it under its federation name.

        ``restore`` selects the construction path: False runs the
        constructor on the spec state (initial deployment); True
        bypasses it and installs a snapshot attribute dict verbatim
        (failover promotion — the same semantics
        ``ReplicaManager._apply_state`` uses in-process).
        """
        if self.node.module is None:
            return {"error": "no application deployed on this worker yet"}
        type_name = payload["type"]
        cls = getattr(self.node.module, type_name, None)
        if cls is None:
            return {"error": f"application has no class {type_name!r}"}
        state = dict(payload.get("state", {}))
        if payload.get("restore"):
            servant = cls.__new__(cls)
            servant.__dict__.update(state)
        else:
            try:
                servant = cls(**state)
            except TypeError as exc:
                return {"error": f"state does not match constructor: {exc}"}
        ref = self.node.bind(payload["name"], servant)
        return {"object_id": ref.object_id, "type": ref.type_name}

    def _control_snapshot(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Servant state snapshots for the named bindings, each taken
        under its servant's dispatch lock so no snapshot is torn by a
        concurrent call (the replication manager's discipline)."""
        states: Dict[str, Dict[str, Any]] = {}
        for name in payload.get("names", ()):
            try:
                ref = self.node.services.naming.resolve(name)
                servant = self.node.services.bus.servant(ref.object_id)
            except ReproError:
                continue
            state = self.node.dispatcher.serialize(
                ref.object_id, lambda s=servant: dict(s.__dict__)
            )
            states[name] = {"type": type(servant).__name__, "state": state}
        return {"node": self.node.name, "states": states}

    def _control_add_user(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.node.services.credentials.add_user(
            payload["name"],
            payload["password"],
            roles=tuple(payload.get("roles", ())),
        )
        return {"node": self.node.name, "user": payload["name"]}

    def _control_login(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Mint a node-local credential token (tokens never roam: a
        token minted by one worker means nothing to another, exactly
        like the in-process per-node login discipline)."""
        credential = self.node.services.auth.login(
            payload["user"], payload["password"]
        )
        return {"node": self.node.name, "token": credential.token}

    def _control_stats(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        stats = self.node.stats()
        stats["wire"] = {
            "requests_served": self.server.requests_served,
            "faults_returned": self.server.faults_returned,
            "protocol_errors": self.server.protocol_errors,
        }
        return stats

    def _control_stop(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return {"__stop__": True, "node": self.node.name}


def serve_node(
    name: str,
    endpoint: str = "tcp://127.0.0.1:0",
    workers: int = 0,
    seed: int = 0,
    announce=None,
) -> int:
    """The ``repro.cli node serve`` body: host one worker until stopped.

    Prints ``REPRO-NODE <name> <endpoint>`` (flushed) once the listener
    is bound, which is how the spawning front-end learns the
    OS-assigned port, then blocks until a CONTROL ``stop`` arrives.
    """
    host = NodeHost(name, workers=workers, seed=seed, endpoint=endpoint)
    bound = host.server.start()
    stream = announce or sys.stdout
    print(f"{ANNOUNCE_PREFIX} {name} {bound}", file=stream, flush=True)
    try:
        host.server.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        host.server.stop()
    host.node.shutdown()
    return 0


# ---------------------------------------------------------------------------
# the front-end
# ---------------------------------------------------------------------------


@dataclass
class WorkerHandle:
    """One spawned worker process and what the front-end knows about it."""

    name: str
    process: subprocess.Popen
    endpoint: str
    stderr_path: str
    alive: bool = True

    def poll(self) -> Optional[int]:
        return self.process.poll()


def _worker_env() -> Dict[str, str]:
    """The child environment: this repro package importable, verbatim."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    return env


class ProcessFederation:
    """A DeploymentSpec served by one OS process per node.

    The spec is the same declarative value the in-process compiler
    consumes — nothing in it is socket-specific.  ``start()`` compiles
    the application once (resolve PIM, apply concerns, ship), spawns
    the workers, replays the package into each over the wire, and binds
    every servant on its ring owner.  After that, :meth:`call` routes
    exactly like ``Federation.call``: resolve the binding, run the
    interceptor chain (metrics → trace → faults → failover → latency →
    routing), and deliver — here, over a pooled socket connection
    under the call's QoS retry budget.
    """

    def __init__(
        self,
        spec,
        registry=None,
        socket_family: str = "tcp",
        startup_timeout_s: float = 30.0,
    ):
        if socket_family not in ("tcp", "unix"):
            raise FederationError(
                f"unknown socket family {socket_family!r} (tcp or unix)"
            )
        spec.validate()
        self.spec = spec
        self.registry = registry
        self.socket_family = socket_family
        self.startup_timeout_s = startup_timeout_s
        self.clock = SimClock()
        self.metrics = MetricsRegistry()
        self.observability = Observability(seed=spec.seed)
        self.faults = FaultInjector(spec.seed)
        # the front-end's own sharded name space: one shard per worker,
        # the ring deciding partition placement exactly as in-process
        from repro.runtime.federation import ShardedNamingService

        self.naming = ShardedNamingService()
        self._shards: Dict[str, NamingService] = {}
        self.workers: Dict[str, WorkerHandle] = {}
        self._endpoints: Dict[str, str] = {}
        self.transport = SocketTransport(self._endpoints.get, node="procfed")
        self._async = LazyQueuedTransport(
            lambda: QueuedTransport(
                workers=spec.delivery_workers, name="procfed"
            )
        )
        #: the one ordered element pipeline every routed call runs
        #: through — the same shape (and order) as Federation.chain
        self.chain = InterceptorChain()
        self.chain.add("metrics", self.metrics.element())
        self.chain.add("trace", self.observability.tracer.element())
        self.chain.add("faults", self.faults.interceptor("federation.route"))
        self.chain.add("failover", self._failover_element)
        self.chain.add("latency", self._latency_element)
        self.chain.add("routing", self._routing_element)
        self.latency_ms = spec.sim_latency_ms
        self.real_latency_s = spec.real_latency_ms / 1000.0
        self._route_lock = named_lock("federation.route")
        self.routed: Dict[str, int] = {}  # guarded_by: _route_lock
        self._topology_lock = named_rlock("federation.topology")
        #: binding name -> servant type (read-only classification key)
        self._bindings: Dict[str, str] = {}
        #: partition key -> binding names in it
        self._partitions: Dict[str, List[str]] = {}
        #: partition key -> {name: {"type", "state"}} standby snapshots
        #: (front-end-mediated write-through replication)
        self._standby: Dict[str, Dict[str, Dict[str, Any]]] = {}
        self._read_only = spec.read_only_by_type()
        self._binding_qos: List[Tuple[str, QoS]] = []
        self._client_qos = (
            spec.profile(spec.client_qos).to_qos()
            if spec.client_qos is not None
            else None
        )
        self._unix_dir: Optional[str] = None
        self._started = False
        self.failovers = 0
        self.app_package = None

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ProcessFederation":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def start(self) -> "ProcessFederation":
        """Compile, spawn, deploy, bind — then the federation serves."""
        if self._started:
            return self
        from repro.core import MdaLifecycle, MiddlewareServices, ship
        from repro.deploy.compiler import DeploymentCompiler

        compiler = DeploymentCompiler(self.registry)
        bootstrap = compiler.compile(self.spec)
        vendor = MdaLifecycle(
            bootstrap.resource,
            registry=compiler.registry,
            services=MiddlewareServices.create(),
        )
        if self.spec.application.concerns:
            vendor.apply_plan(bootstrap.concern_plan)
        self.app_package = ship(vendor)
        package_json = self.app_package.to_json()
        read_only = {
            type_name: sorted(ops)
            for type_name, ops in self._read_only.items()
            if ops
        }
        try:
            for index, node_spec in enumerate(self.spec.nodes):
                self._spawn_worker(node_spec, index)
            for name in self.workers:
                self.transport.control(
                    name,
                    {
                        "verb": "deploy",
                        "package": package_json,
                        "read_only": read_only,
                    },
                )
            for partition in self.spec.partitions:
                names = self._partitions.setdefault(partition.key, [])
                owner = self.naming.owner_of(partition.key)
                for servant_spec in partition.servants:
                    self._bind(owner, servant_spec)
                    names.append(servant_spec.name)
            for _partition, servant_spec in self.spec.servants():
                if servant_spec.qos is not None:
                    self._binding_qos.append(
                        (
                            servant_spec.name,
                            self.spec.profile(servant_spec.qos).to_qos(),
                        )
                    )
            for user in self.spec.users:
                for name in self.workers:
                    self.transport.control(
                        name,
                        {
                            "verb": "add_user",
                            "name": user.name,
                            "password": user.password,
                            "roles": list(user.roles),
                        },
                    )
            for site in self.spec.faults.effective_sites():
                self.faults.configure(
                    site.site, site.probability
                )
            self.observability.configure(self.spec.observability)
            if self.spec.replication.count > 0:
                for partition in self._partitions:
                    self._sync_partition(partition)
        except BaseException:
            self.shutdown()
            raise
        self._started = True
        return self

    def _spawn_worker(self, node_spec, index: int) -> WorkerHandle:
        endpoint = "tcp://127.0.0.1:0"
        if self.socket_family == "unix":
            if self._unix_dir is None:
                self._unix_dir = tempfile.mkdtemp(prefix="repro-procfed-")
            endpoint = f"unix://{self._unix_dir}/{node_spec.name}.sock"
        seed = (
            node_spec.seed
            if node_spec.seed is not None
            else self.spec.seed * 31 + index
        )
        stderr_file = tempfile.NamedTemporaryFile(
            mode="wb", prefix=f"repro-worker-{node_spec.name}-",
            suffix=".log", delete=False,
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "node", "serve",
                "--name", node_spec.name,
                "--endpoint", endpoint,
                "--workers", str(node_spec.workers),
                "--seed", str(seed),
            ],
            env=_worker_env(),
            stdout=subprocess.PIPE,
            stderr=stderr_file,
        )
        stderr_file.close()
        try:
            bound = self._read_announcement(process, stderr_file.name)
        except BaseException:
            process.kill()
            process.wait()
            raise
        handle = WorkerHandle(
            name=node_spec.name,
            process=process,
            endpoint=bound,
            stderr_path=stderr_file.name,
        )
        self.workers[node_spec.name] = handle
        self._endpoints[node_spec.name] = bound
        shard = NamingService()
        self._shards[node_spec.name] = shard
        self.naming.add_shard(node_spec.name, shard)
        return handle

    def _read_announcement(self, process: subprocess.Popen, stderr_path: str) -> str:
        """Scan the worker's stdout for its bound-endpoint announcement."""
        deadline = time.monotonic() + self.startup_timeout_s
        stream = process.stdout
        buffer = b""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeploymentError(
                    "worker did not announce its endpoint within "
                    f"{self.startup_timeout_s:g}s"
                    + self._stderr_tail(stderr_path)
                )
            ready, _w, _x = select.select([stream], [], [], min(remaining, 0.5))
            if not ready:
                if process.poll() is not None:
                    raise DeploymentError(
                        f"worker exited with status {process.returncode} "
                        "before announcing its endpoint"
                        + self._stderr_tail(stderr_path)
                    )
                continue
            chunk = os.read(stream.fileno(), 4096)
            if not chunk:
                raise DeploymentError(
                    "worker closed stdout before announcing its endpoint"
                    + self._stderr_tail(stderr_path)
                )
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                parts = line.decode("utf-8", "replace").split()
                if len(parts) == 3 and parts[0] == ANNOUNCE_PREFIX:
                    return parts[2]

    @staticmethod
    def _stderr_tail(path: str, limit: int = 2000) -> str:
        try:
            with open(path, "rb") as handle:
                tail = handle.read()[-limit:].decode("utf-8", "replace")
        except OSError:
            return ""
        return f"; worker stderr:\n{tail}" if tail.strip() else ""

    def _bind(self, owner: str, servant_spec, restore_state=None) -> None:
        payload = {
            "verb": "bind",
            "name": servant_spec.name,
            "type": servant_spec.type_name,
            "state": dict(
                restore_state if restore_state is not None
                else servant_spec.state
            ),
            "restore": restore_state is not None,
        }
        reply = self.transport.control(owner, payload)
        ref = ObjectRefData(reply["object_id"], reply["type"])
        self._shards[owner].rebind(servant_spec.name, ref)
        self._bindings[servant_spec.name] = servant_spec.type_name

    def shutdown(self) -> None:
        """Stop every worker (polite control first, then the OS)."""
        self._async.shutdown()
        for name, handle in list(self.workers.items()):
            if handle.alive and handle.poll() is None:
                with contextlib.suppress(ReproError, OSError):
                    self.transport.control(name, {"verb": "stop"})
        self.transport.shutdown()
        for handle in self.workers.values():
            if handle.poll() is None:
                handle.process.terminate()
            try:
                handle.process.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                handle.process.kill()
                handle.process.wait()
            if handle.process.stdout is not None:
                handle.process.stdout.close()
            with contextlib.suppress(OSError):
                os.unlink(handle.stderr_path)
        if self._unix_dir is not None:
            shutil.rmtree(self._unix_dir, ignore_errors=True)
        self._started = False

    # -- fault tolerance ------------------------------------------------------

    def kill(self, name: str) -> None:
        """Hard-kill one worker process (fail-stop).

        The endpoint stays registered: in-flight and subsequent calls
        meet a dead socket and surface :class:`NodeDownError` — a
        refused dial is pre-effect outright, a mid-call disconnect is
        upgraded by the failover element once it confirms the process
        is dead — and drive failover + retry, the same observable
        sequence as killing an in-process node.
        """
        handle = self.workers.get(name)
        if handle is None:
            raise FederationError(f"unknown node {name!r}")
        handle.alive = False
        if handle.poll() is None:
            handle.process.kill()
            handle.process.wait()

    def fail_over(self, name: str) -> List[str]:
        """Promote the dead worker's partitions onto their ring successors.

        Standby snapshots (captured by write-through replication) are
        restored over CONTROL ``bind`` on each partition's new owner,
        names rebind, and the dead shard leaves the ring.  Idempotent —
        concurrent retries racing the same dead node promote once.
        """
        from repro.deploy.spec import ServantSpec

        with self._topology_lock:
            handle = self.workers.get(name)
            if handle is None:
                return []  # already failed over (or never existed)
            if handle.poll() is None and handle.alive:
                raise FederationError(
                    f"node {name!r} is still alive; kill it first"
                )
            del self.workers[name]
            endpoint = self._endpoints.pop(name, None)
            if endpoint is not None:
                self.transport.pool.invalidate(endpoint)
            owned = [
                partition
                for partition in self._partitions
                if self.naming.owner_of(partition) == name
            ]
            self.naming.remove_shard(name)
            self._shards.pop(name, None)
            promoted: List[str] = []
            for partition in owned:
                successor = self.naming.owner_of(partition)
                snapshots = self._standby.get(partition, {})
                for binding in self._partitions[partition]:
                    snap = snapshots.get(binding)
                    if snap is None:
                        continue  # never replicated — state is lost
                    spec = ServantSpec(name=binding, type_name=snap["type"])
                    self._bind(successor, spec, restore_state=snap["state"])
                    promoted.append(binding)
            self.failovers += 1
            return promoted

    def _sync_partition(self, partition: str, owner: Optional[str] = None) -> None:
        """Write-through: snapshot the partition out of its owner worker
        into the front-end's standby map.  Best-effort — it runs after
        the triggering call's effect and must never fail that call."""
        names = self._partitions.get(partition)
        if not names:
            return
        owner = owner or self.naming.owner_of(partition)
        try:
            reply = self.transport.control(
                owner, {"verb": "snapshot", "names": list(names)}
            )
        except (ReproError, OSError):
            return
        states = reply.get("states", {})
        if states:
            self._standby.setdefault(partition, {}).update(states)

    # -- chain elements -------------------------------------------------------

    def _failover_element(self, envelope: Envelope, proceed: Callable[[], Any]):
        """Promote a dead worker's standbys; classify mid-call faults.

        A ``mid_call`` fault (reply lost after the request was written)
        is ambiguous at the transport: the effect may have executed.
        ``fail_over`` resolves it — it refuses while the worker process
        is alive (so a slow-or-flaky but living node never gets a
        duplicate delivery) and succeeds only once the worker is
        fail-stop dead, at which point any unacked effect died with the
        process and promotion restored the pre-call standby snapshot.
        Only then is the fault upgraded to pre-effect, letting the QoS
        budget land the very same call on the new primary."""
        try:
            return proceed()
        except NodeDownError as exc:
            if exc.node and (exc.pre_effect or exc.mid_call):
                try:
                    self.fail_over(exc.node)
                except FederationError:
                    pass  # worker still alive (or last node): no upgrade
                else:
                    exc.pre_effect = True
            raise

    def _latency_element(self, envelope: Envelope, proceed: Callable[[], Any]):
        self.clock.advance(self.latency_ms)
        if self.real_latency_s > 0:
            time.sleep(self.real_latency_s)
        return proceed()

    def _routing_element(self, envelope: Envelope, proceed: Callable[[], Any]):
        with self._route_lock:
            self.routed[envelope.target] = self.routed.get(envelope.target, 0) + 1
        return proceed()

    # -- invocation path ------------------------------------------------------

    def ref(self, name: str) -> ObjectRefData:
        """The wire reference of a bound name (usable as a call argument
        for operations served by the same worker — the worker's ORB
        hydrates it back into a proxy to its local servant)."""
        return self._resolve(name)[1]

    def qos_for(self, name: str) -> Optional[QoS]:
        for pattern, qos in self._binding_qos:
            if fnmatch.fnmatchcase(name, pattern):
                return qos
        return None

    def _resolve(self, binding: str) -> Tuple[str, ObjectRefData]:
        """Owner + wire ref for ``binding``, riding out failover windows.

        Between ``remove_shard`` and the promotion rebinds a resolve can
        transiently miss; a short bounded retry (not the QoS budget)
        absorbs it, mirroring the in-process migration gate's effect.
        """
        for _attempt in range(50):
            try:
                return self.naming.resolve_with_owner(binding)
            except NamingError:
                time.sleep(0.01)
        return self.naming.resolve_with_owner(binding)

    def _envelope(
        self,
        binding: str,
        operation: str,
        args: tuple,
        kwargs: dict,
        context: Optional[Dict[str, Any]],
        qos: QoS,
    ) -> Tuple[Envelope, Callable[[Envelope], Any]]:
        if qos is DEFAULT_QOS:
            declared = self.qos_for(binding)
            if declared is None:
                declared = self._client_qos
            if declared is not None:
                qos = declared
        type_name = self._bindings.get(binding)
        if type_name is None:
            # bound outside the spec (or promoted): resolve for the type
            type_name = self._resolve(binding)[1].type_name
        # ``context`` may be a provider ``callable(owner_name) -> dict``
        # (how ProcessClient attaches per-worker credential tokens): it
        # is re-invoked per attempt against the re-resolved owner
        if callable(context):
            context_for = lambda owner: dict(context(owner) or {})  # noqa: E731
        else:
            static_context = dict(context or {})
            context_for = lambda owner: dict(static_context)  # noqa: E731
        tracer = self.observability.tracer
        trace_headers = tracer.current_headers() if tracer.enabled else None
        request = Request(
            object_id="",
            operation=operation,
            args=marshal(list(args), root="args"),
            kwargs=marshal(dict(kwargs or {}), root="kwargs"),
            context={},
        )
        envelope = Envelope(
            request=request,
            qos=qos,
            label=f"{type_name}.{operation}",
            binding=binding,
        )
        from repro.runtime.federation import ShardedNamingService

        partition = ShardedNamingService.partition_key(binding)

        def handler(env: Envelope):
            owner, live_ref = self._resolve(binding)
            env.target = owner
            env.request.object_id = live_ref.object_id
            env.request.context = attempt_context = context_for(owner)
            if trace_headers is not None:
                attempt_context[TRACE_KEY] = trace_headers
            return self.chain.execute(
                env, lambda: self._wire_call(owner, partition, env)
            )

        return envelope, handler

    def _wire_call(self, owner: str, partition: str, envelope: Envelope):
        response = self.transport.roundtrip(owner, envelope)
        if envelope.is_oneway or response is None:
            self._after_effect(owner, partition, envelope)
            return None
        if response.is_error:
            from repro.middleware.bus import MessageBus

            MessageBus.raise_remote(response)
        self._after_effect(owner, partition, envelope)
        return response.result

    def _after_effect(self, owner: str, partition: str, envelope: Envelope) -> None:
        if self.spec.replication.count < 1:
            return
        type_name = self._bindings.get(envelope.binding or "")
        read_only = self._read_only.get(type_name or "", frozenset())
        if envelope.request.operation in read_only:
            return
        self._sync_partition(partition, owner)

    def call(
        self,
        name: str,
        operation: str,
        *args,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = DEFAULT_QOS,
        **kwargs,
    ):
        """Resolve ``name`` and invoke ``operation`` on its owner worker."""
        envelope, handler = self._envelope(
            name, operation, args, kwargs, context, qos
        )
        return self.transport.submit(envelope, handler).raw()

    def call_async(
        self,
        name: str,
        operation: str,
        *args,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = DEFAULT_QOS,
        **kwargs,
    ) -> ReplyFuture:
        envelope, handler = self._envelope(
            name, operation, args, kwargs, context, qos
        )
        return self._async.get().submit(envelope, handler)

    def call_oneway(
        self,
        name: str,
        operation: str,
        *args,
        context: Optional[Dict[str, Any]] = None,
        qos: QoS = ONEWAY_QOS,
        **kwargs,
    ) -> None:
        envelope, handler = self._envelope(
            name, operation, args, kwargs, context, qos
        )
        self._async.get().submit(envelope, handler)

    def quiesce(self, timeout_s: Optional[float] = None) -> bool:
        """Wait until every asynchronous submission delivered.

        Oneways are acked only after their servant effect landed
        (execute-then-ack), so a drained queue means drained workers."""
        return self._async.drain(timeout_s)

    def client(
        self,
        user: Optional[str] = None,
        password: Optional[str] = None,
        qos: Optional[QoS] = None,
    ) -> "ProcessClient":
        return ProcessClient(self, user=user, password=password, qos=qos)

    # -- introspection --------------------------------------------------------

    def worker_stats(self, name: str) -> Dict[str, Any]:
        return self.transport.control(name, {"verb": "stats"})

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": sorted(self.workers),
            "routed": dict(self.routed),
            "failovers": self.failovers,
            "transport": self.transport.stats(),
        }


class ProcessClient:
    """A client identity against a ProcessFederation: per-worker tokens.

    The multi-process mirror of ``FederationClient`` — tokens are
    node-local, so the client logs in over CONTROL against whichever
    worker a binding resolves to (re-minting after a failover promoted
    the shard to a worker it has never spoken to)."""

    def __init__(
        self,
        federation: ProcessFederation,
        user: Optional[str] = None,
        password: Optional[str] = None,
        qos: Optional[QoS] = None,
    ):
        self.federation = federation
        self.user = user
        self.password = password
        self.default_qos = qos or DEFAULT_QOS
        self._tokens: Dict[str, str] = {}  # guarded_by: _lock
        self._lock = named_lock("procfed.client")

    def ref(self, name: str) -> ObjectRefData:
        return self.federation.ref(name)

    def _token_for(self, owner: str) -> str:
        with self._lock:
            token = self._tokens.get(owner)
        if token is None:
            reply = self.federation.transport.control(
                owner,
                {"verb": "login", "user": self.user, "password": self.password},
            )
            token = reply["token"]
            with self._lock:
                self._tokens[owner] = token
        return token

    def _context_for(self, owner: str) -> Optional[Dict[str, Any]]:
        if self.user is None:
            return None
        return {"credentials": self._token_for(owner)}

    def call(
        self, name: str, operation: str, *args, qos: Optional[QoS] = None, **kwargs
    ):
        return self.federation.call(
            name, operation, *args,
            context=self._context_for, qos=qos or self.default_qos, **kwargs,
        )

    def call_async(
        self, name: str, operation: str, *args, qos: Optional[QoS] = None, **kwargs
    ) -> ReplyFuture:
        return self.federation.call_async(
            name, operation, *args,
            context=self._context_for, qos=qos or self.default_qos, **kwargs,
        )

    def oneway(
        self, name: str, operation: str, *args, qos: QoS = ONEWAY_QOS, **kwargs
    ) -> None:
        self.federation.call_oneway(
            name, operation, *args,
            context=self._context_for, qos=qos, **kwargs,
        )
