"""S14 — Distributed runtime: federation, concurrent dispatch, scenarios.

The middleware substrate (S10) simulates the services *one* application
instance uses.  This package turns those services into a runtime fabric:

* :mod:`repro.runtime.dispatch` — sequential and thread-pool request
  dispatchers with per-servant serialization;
* :mod:`repro.runtime.metrics` — thread-safe throughput/error/latency
  (p50/p95/p99/p99.9, bounded log-bucketed histograms) statistics per
  operation and per node, plus sampled level gauges;
* :mod:`repro.runtime.observability` — the federation observability
  plane: distributed tracing woven into the interceptor chains, the
  bounded structured event log, and gauge sampling
  (:class:`~repro.runtime.observability.Observability` per federation);
* :mod:`repro.runtime.node` — a federation node: one ORB endpoint with
  its own middleware services hosting a woven application;
* :mod:`repro.runtime.federation` — consistent-hash ring, sharded naming
  over per-node naming services, routed + metered inter-node invocation,
  and elastic membership: live ``join``/``retire`` with gated shard
  migration, fail-stop ``kill`` with replicated standby failover;
* :mod:`repro.runtime.scenarios` — built-in load scenarios mirroring the
  four examples (banking, auction, medical_records, component_shipping),
  each with a seeded client mix, fault campaign, and invariants;
* :mod:`repro.runtime.load` — open-loop load generation on a
  virtual-time event scheduler: arrival-rate schedules, Zipf key
  popularity, and the bounded-lateness driver hosting simulated users
  as array-backed state machines (millions of users, zero threads);
* :mod:`repro.runtime.harness` — the runner driving seeded clients
  against a federation and checking scenario invariants
  (``repro.cli simulate`` is its command-line front end).
"""

from repro.runtime.dispatch import ConcurrentDispatcher, SerialDispatcher
from repro.runtime.federation import (
    Federation,
    FederationClient,
    HashRing,
    InvocationPipeline,
    ReplicaGroup,
    ReplicaManager,
    ShardManifest,
    ShardedNamingService,
)
from repro.runtime.harness import (
    RunConfig,
    ScenarioResult,
    ScenarioRunner,
    run_scenario,
)
from repro.runtime.metrics import MetricsRegistry, percentile
from repro.runtime.node import Node
from repro.runtime.observability import (
    EventLog,
    GaugeBoard,
    LogHistogram,
    Observability,
    Span,
    TraceContext,
    Tracer,
)
from repro.runtime.scenarios import SCENARIOS, AsyncOp, Scenario, get_scenario

__all__ = [
    "ConcurrentDispatcher",
    "SerialDispatcher",
    "Federation",
    "FederationClient",
    "HashRing",
    "InvocationPipeline",
    "ReplicaGroup",
    "ReplicaManager",
    "ShardManifest",
    "ShardedNamingService",
    "RunConfig",
    "ScenarioResult",
    "ScenarioRunner",
    "run_scenario",
    "MetricsRegistry",
    "percentile",
    "Node",
    "Observability",
    "Tracer",
    "TraceContext",
    "Span",
    "EventLog",
    "GaugeBoard",
    "LogHistogram",
    "SCENARIOS",
    "AsyncOp",
    "Scenario",
    "get_scenario",
]
