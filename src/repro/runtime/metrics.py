"""Runtime metrics: throughput, error counts, latency percentiles.

One :class:`MetricsRegistry` serves a whole federation.  Every completed
request is recorded under its operation label (``Class.operation``) and
its serving node; latency percentiles (p50/p95/p99) are computed from the
full per-operation sample set with the nearest-rank method.  All recording
paths are thread-safe — client threads and dispatcher workers feed the
same registry.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional


def percentile_of_sorted(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted ``ordered`` list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples``; 0.0 for an empty set."""
    return percentile_of_sorted(sorted(samples), fraction)


class _Series:
    __slots__ = ("count", "errors", "latencies")

    def __init__(self):
        self.count = 0
        self.errors = 0
        self.latencies: List[float] = []

    def add(self, seconds: float, error: bool) -> None:
        self.count += 1
        if error:
            self.errors += 1
        self.latencies.append(seconds)

    def summary(self) -> Dict[str, float]:
        # one sort serves all three percentiles
        ordered = sorted(self.latencies)
        total = sum(ordered)
        return {
            "count": self.count,
            "errors": self.errors,
            "mean_ms": (total / len(ordered)) * 1000.0 if ordered else 0.0,
            "p50_ms": percentile_of_sorted(ordered, 0.50) * 1000.0,
            "p95_ms": percentile_of_sorted(ordered, 0.95) * 1000.0,
            "p99_ms": percentile_of_sorted(ordered, 0.99) * 1000.0,
        }


def format_series_table(series: Dict[str, Dict[str, float]], indent: str = "") -> List[str]:
    """Render ``{name: summary}`` rows as a latency table (shared by the
    registry report and the scenario report)."""
    lines = [
        f"{indent}{'operation':<28}{'count':>7}{'err':>6}"
        f"{'p50 ms':>9}{'p95 ms':>9}{'p99 ms':>9}"
    ]
    for name, s in series.items():
        lines.append(
            f"{indent}{name:<28}{s['count']:>7}{s['errors']:>6}"
            f"{s['p50_ms']:>9.3f}{s['p95_ms']:>9.3f}{s['p99_ms']:>9.3f}"
        )
    return lines


class MetricsRegistry:
    """Thread-safe per-operation and per-node request statistics."""

    def __init__(self):
        self._lock = threading.Lock()
        self._per_op: Dict[str, _Series] = {}
        self._per_node: Dict[str, _Series] = {}
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

    # -- wall-clock window ---------------------------------------------------

    def start(self) -> None:
        self._started_at = time.perf_counter()
        self._stopped_at = None

    def stop(self) -> None:
        self._stopped_at = time.perf_counter()

    def elapsed_s(self) -> float:
        if self._started_at is None:
            return 0.0
        end = self._stopped_at or time.perf_counter()
        return end - self._started_at

    # -- recording -----------------------------------------------------------

    def record(
        self, operation: str, node: str, seconds: float, error: bool = False
    ) -> None:
        with self._lock:
            series = self._per_op.get(operation)
            if series is None:
                series = self._per_op[operation] = _Series()
            series.add(seconds, error)
            node_series = self._per_node.get(node)
            if node_series is None:
                node_series = self._per_node[node] = _Series()
            node_series.add(seconds, error)

    def element(self):
        """This registry as an interceptor-chain element.

        Records one sample per *logical call* under ``envelope.label``
        and ``envelope.target``: a transport fault that the QoS retry
        budget will re-deliver is not recorded (only the final attempt
        is), so counts and error rates stay comparable to the
        synchronous one-record-per-call metering.  Envelopes with no
        label (e.g. pipelined batches that meter their member calls
        individually) pass through unrecorded.
        """
        from repro.middleware.envelope import will_retry

        def metrics_element(envelope, proceed):
            if envelope.label is None:
                return proceed()
            node = envelope.target or "?"
            started = time.perf_counter()
            try:
                result = proceed()
            except Exception as exc:
                if not will_retry(envelope, exc):
                    self.record(
                        envelope.label, node, time.perf_counter() - started, error=True
                    )
                raise
            self.record(envelope.label, node, time.perf_counter() - started)
            return result

        return metrics_element

    # -- reporting -------------------------------------------------------------

    def total_requests(self) -> int:
        with self._lock:
            return sum(s.count for s in self._per_op.values())

    def total_errors(self) -> int:
        with self._lock:
            return sum(s.errors for s in self._per_op.values())

    def throughput_ops_s(self) -> float:
        elapsed = self.elapsed_s()
        return self.total_requests() / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            per_op = {name: s.summary() for name, s in sorted(self._per_op.items())}
            per_node = {
                name: s.summary() for name, s in sorted(self._per_node.items())
            }
        return {
            "operations": per_op,
            "nodes": per_node,
            "total_requests": sum(v["count"] for v in per_op.values()),
            "total_errors": sum(v["errors"] for v in per_op.values()),
            "elapsed_s": self.elapsed_s(),
            "throughput_ops_s": self.throughput_ops_s(),
        }

    def report(self) -> str:
        """Human-readable latency/throughput table."""
        snap = self.snapshot()
        lines = [
            f"requests: {snap['total_requests']}"
            f"  errors: {snap['total_errors']}"
            f"  elapsed: {snap['elapsed_s']:.3f}s"
            f"  throughput: {snap['throughput_ops_s']:.0f} ops/s",
        ]
        lines.extend(format_series_table(snap["operations"]))
        lines.append(f"{'node':<28}{'count':>7}{'err':>6}")
        for name, s in snap["nodes"].items():
            lines.append(f"{name:<28}{s['count']:>7}{s['errors']:>6}")
        return "\n".join(lines)
