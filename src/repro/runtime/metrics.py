"""Runtime metrics: throughput, error counts, latency percentiles.

One :class:`MetricsRegistry` serves a whole federation.  Every completed
request is recorded under its operation label (``Class.operation``) and
its serving node.  Latency percentiles (p50/p95/p99/p99.9) come from a
log-bucketed :class:`~repro.runtime.observability.histogram.LogHistogram`
per series — fixed memory no matter how many samples land, with < 1%
relative error against exact nearest-rank.  All recording paths are
thread-safe — client threads and dispatcher workers feed the same
registry.  Level gauges (queue depth, in-flight, replica lag) sampled by
the observability plane live on :attr:`MetricsRegistry.gauges`.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional

from repro.analysis.witness import named_lock
from repro.runtime.observability.gauges import GaugeBoard
from repro.runtime.observability.histogram import LogHistogram


def percentile_of_sorted(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted ``ordered`` list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples``; 0.0 for an empty set."""
    return percentile_of_sorted(sorted(samples), fraction)


class _Series:
    __slots__ = ("count", "errors", "hist")

    def __init__(self):
        self.count = 0
        self.errors = 0
        self.hist = LogHistogram()

    def add(self, seconds: float, error: bool) -> None:
        self.count += 1
        if error:
            self.errors += 1
        self.hist.add(seconds)

    def summary(self) -> Dict[str, float]:
        hist = self.hist
        return {
            "count": self.count,
            "errors": self.errors,
            "mean_ms": hist.mean() * 1000.0,
            "p50_ms": hist.percentile(0.50) * 1000.0,
            "p95_ms": hist.percentile(0.95) * 1000.0,
            "p99_ms": hist.percentile(0.99) * 1000.0,
            "p999_ms": hist.percentile(0.999) * 1000.0,
        }


def format_series_table(
    series: Dict[str, Dict[str, float]], indent: str = "", title: str = "operation"
) -> List[str]:
    """Render ``{name: summary}`` rows as a latency table (shared by the
    registry report and the scenario report)."""
    lines = [
        f"{indent}{title:<28}{'count':>7}{'err':>6}"
        f"{'p50 ms':>9}{'p95 ms':>9}{'p99 ms':>9}{'p99.9 ms':>10}"
    ]
    for name, s in series.items():
        p999 = s.get("p999_ms", s["p99_ms"])
        lines.append(
            f"{indent}{name:<28}{s['count']:>7}{s['errors']:>6}"
            f"{s['p50_ms']:>9.3f}{s['p95_ms']:>9.3f}{s['p99_ms']:>9.3f}"
            f"{p999:>10.3f}"
        )
    return lines


def goodput_summary(offered: int, completed_ok: int, elapsed_s: float) -> Dict[str, float]:
    """Goodput under offered load.

    Throughput divides *completions* by elapsed time, which under a
    closed loop always looks healthy: the clients slow down with the
    system.  Goodput instead relates useful completions to what was
    *offered* — ``goodput_fraction`` is the share of offered operations
    that completed successfully (shed and failed work both count
    against it), the honest overload number.
    """
    return {
        "offered": offered,
        "completed_ok": completed_ok,
        "offered_ops_s": offered / elapsed_s if elapsed_s > 0 else 0.0,
        "goodput_ops_s": completed_ok / elapsed_s if elapsed_s > 0 else 0.0,
        "goodput_fraction": completed_ok / offered if offered else 0.0,
    }


class MetricsRegistry:
    """Thread-safe per-operation and per-node request statistics."""

    def __init__(self):
        self._lock = named_lock("metrics.registry")
        self._per_op: Dict[str, _Series] = {}  # guarded_by: _lock
        self._per_node: Dict[str, _Series] = {}  # guarded_by: _lock
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None
        self._last_record_at: Optional[float] = None
        #: level gauges sampled by the observability plane
        self.gauges = GaugeBoard()

    # -- wall-clock window ---------------------------------------------------

    def start(self) -> None:
        self._started_at = time.perf_counter()
        self._stopped_at = None
        self._last_record_at = None

    def stop(self) -> None:
        self._stopped_at = time.perf_counter()

    def elapsed_s(self) -> float:
        """The measurement window in seconds.

        When ``stop()`` was never called (a harness early-abort, a crash
        report read post-mortem), the window freezes at the *last
        recorded sample* instead of silently growing with wall clock —
        otherwise throughput decays toward zero the longer the aborted
        registry sits around before being read.
        """
        if self._started_at is None:
            return 0.0
        end = self._stopped_at
        if end is None:
            end = self._last_record_at
        if end is None or end < self._started_at:
            return 0.0
        return end - self._started_at

    # -- recording -----------------------------------------------------------

    def record(
        self, operation: str, node: str, seconds: float, error: bool = False
    ) -> None:
        now = time.perf_counter()
        with self._lock:
            self._last_record_at = now
            series = self._per_op.get(operation)
            if series is None:
                series = self._per_op[operation] = _Series()
            series.add(seconds, error)
            node_series = self._per_node.get(node)
            if node_series is None:
                node_series = self._per_node[node] = _Series()
            node_series.add(seconds, error)

    def element(self):
        """This registry as an interceptor-chain element.

        Records one sample per *logical call* under ``envelope.label``
        and ``envelope.target``: a transport fault that the QoS retry
        budget will re-deliver is not recorded (only the final attempt
        is), so counts and error rates stay comparable to the
        synchronous one-record-per-call metering.  Envelopes with no
        label (e.g. pipelined batches that meter their member calls
        individually) pass through unrecorded.
        """
        from repro.middleware.envelope import will_retry

        def metrics_element(envelope, proceed):
            if envelope.label is None:
                return proceed()
            node = envelope.target or "?"
            started = time.perf_counter()
            try:
                result = proceed()
            except Exception as exc:
                if not will_retry(envelope, exc):
                    self.record(
                        envelope.label, node, time.perf_counter() - started, error=True
                    )
                raise
            self.record(envelope.label, node, time.perf_counter() - started)
            return result

        return metrics_element

    # -- reporting -------------------------------------------------------------

    def total_requests(self) -> int:
        with self._lock:
            return sum(s.count for s in self._per_op.values())

    def total_errors(self) -> int:
        with self._lock:
            return sum(s.errors for s in self._per_op.values())

    def throughput_ops_s(self) -> float:
        elapsed = self.elapsed_s()
        return self.total_requests() / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            per_op = {name: s.summary() for name, s in sorted(self._per_op.items())}
            per_node = {
                name: s.summary() for name, s in sorted(self._per_node.items())
            }
        return {
            "operations": per_op,
            "nodes": per_node,
            "gauges": self.gauges.snapshot(),
            "total_requests": sum(v["count"] for v in per_op.values()),
            "total_errors": sum(v["errors"] for v in per_op.values()),
            "elapsed_s": self.elapsed_s(),
            "throughput_ops_s": self.throughput_ops_s(),
        }

    def report(self) -> str:
        """Human-readable latency/throughput table."""
        snap = self.snapshot()
        lines = [
            f"requests: {snap['total_requests']}"
            f"  errors: {snap['total_errors']}"
            f"  elapsed: {snap['elapsed_s']:.3f}s"
            f"  throughput: {snap['throughput_ops_s']:.0f} ops/s",
        ]
        lines.extend(format_series_table(snap["operations"]))
        lines.extend(format_series_table(snap["nodes"], title="node"))
        return "\n".join(lines)
