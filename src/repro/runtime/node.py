"""One federation node: an ORB endpoint hosting a woven application.

A :class:`Node` owns a full, independent middleware service set
(:class:`~repro.core.runtime.MiddlewareServices`: bus, ORB, naming shard,
transaction manager, security services) plus a request dispatcher.  The
node's naming service doubles as its shard of the federation's sharded
naming service, so binding a servant locally *is* publishing it to the
federation.

Applications are deployed per node: each node refines its own copy of the
PIM through the configured concerns and builds its own woven module, so
the weaver instruments node-private classes and aspects close over
node-private services — exactly the deployment unit a real ORB federation
replicates onto every host.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.analysis.witness import named_lock
from repro.core.lifecycle import MdaLifecycle
from repro.core.runtime import MiddlewareServices
from repro.errors import NamingError
from repro.middleware.bus import ObjectRefData
from repro.middleware.envelope import delivering
from repro.runtime.dispatch import ConcurrentDispatcher, SerialDispatcher

_module_counter = itertools.count(1)

ConcernPlan = Union[
    Mapping[str, Mapping[str, Any]], Iterable[Tuple[str, Mapping[str, Any]]]
]


def _concern_pairs(concerns: ConcernPlan):
    if isinstance(concerns, Mapping):
        return list(concerns.items())
    return list(concerns)


class Node:
    """A named ORB endpoint with its own services, dispatcher, and app."""

    def __init__(
        self,
        name: str,
        services: Optional[MiddlewareServices] = None,
        workers: int = 0,
        seed: int = 0,
    ):
        self.name = name
        self.services = services or MiddlewareServices.create(seed=seed)
        #: construction parameters, kept so Federation.current_spec()
        #: can re-extract the live topology as a DeploymentSpec
        self.workers = workers
        self.seed = seed
        if workers > 0:
            self.dispatcher = ConcurrentDispatcher(workers=workers, name=name)
        else:
            self.dispatcher = SerialDispatcher()
        # every bus delivery — including nested in-process proxy calls
        # that bypass Node.invoke — serializes on the servant's lock
        self.services.bus.dispatch_guard = self.dispatcher.serialize
        #: False once the node is killed (fail-stop) or retired; the
        #: federation's routing terminal refuses dead targets with a
        #: pre-effect NodeDownError so standby promotion can take over
        self.alive = True
        #: set by Federation.add_node
        self.federation = None
        self.lifecycle: Optional[MdaLifecycle] = None
        self.module = None
        self._bind_lock = named_lock("node.bind")

    # -- application deployment ------------------------------------------------

    def deploy(
        self,
        resource,
        concerns: ConcernPlan = (),
        module_name: Optional[str] = None,
    ):
        """Refine ``resource`` through ``concerns`` and build the woven app.

        Returns the generated module; the node keeps the lifecycle for
        introspection (``node.lifecycle``) and the module for instancing
        servants (``node.module``).
        """
        lifecycle = MdaLifecycle(resource, services=self.services)
        for concern, params in _concern_pairs(concerns):
            lifecycle.apply_concern(concern, **params)
        name = module_name or (
            f"{self.name.replace('-', '_')}_app_{next(_module_counter)}"
        )
        module = lifecycle.build_application(name)
        self.host(lifecycle, module)
        return module

    def host(self, lifecycle: Optional[MdaLifecycle], module) -> None:
        """Adopt an application built elsewhere (e.g. replayed packages)."""
        self.lifecycle = lifecycle
        self.module = module

    # -- servants -------------------------------------------------------------

    def bind(self, name: str, servant: Any) -> ObjectRefData:
        """Register ``servant`` and bind it under the federation name.

        The name's partition must hash to this node's shard — entities
        live where their names live, so request routing and naming
        resolution always agree.
        """
        if self.federation is not None:
            owner = self.federation.naming.owner_of(name)
            if owner != self.name:
                raise NamingError(
                    f"name {name!r} belongs to shard {owner!r}, "
                    f"not to node {self.name!r}"
                )
        with self._bind_lock:
            ref = self.services.orb.register(servant)
            self.services.naming.rebind(name, ref)
        if self.federation is not None and self.federation.replicas is not None:
            # seed the standby copies immediately: a partition must be
            # recoverable even if it is killed before any routed call
            # ever write-through-replicated it
            self.federation.replicas.sync_partition(
                self.federation.naming.partition_key(name)
            )
        return ref

    # -- request entry point -----------------------------------------------------

    def _runner(
        self,
        ref: ObjectRefData,
        operation: str,
        args: tuple,
        kwargs: dict,
        context: Optional[Dict[str, Any]],
    ):
        """The executable unit both invocation styles dispatch.

        The caller-supplied ``context`` (credentials, transaction hints)
        is re-established on the executing thread before the ORB builds
        the request, so implicit context survives the thread hop; it is
        also published as the thread's *delivery context*, so outbound
        calls the servant makes (cross-node nested dispatch) inherit it.
        """
        orb = self.services.orb

        def run():
            with delivering(context):
                if context:
                    with orb.call_context(**context):
                        return orb.invoke(ref, operation, args, kwargs)
                return orb.invoke(ref, operation, args, kwargs)

        return run

    def invoke(
        self,
        ref: ObjectRefData,
        operation: str,
        args: tuple,
        kwargs: dict,
        context: Optional[Dict[str, Any]] = None,
    ):
        """Execute a request against a local servant through the dispatcher."""
        return self.dispatcher.dispatch(
            ref.object_id, self._runner(ref, operation, args, kwargs, context)
        )

    def invoke_async(
        self,
        ref: ObjectRefData,
        operation: str,
        args: tuple,
        kwargs: dict,
        context: Optional[Dict[str, Any]] = None,
    ):
        """Dispatch without blocking; returns a ``concurrent.futures.Future``.

        With a concurrent dispatcher the request lands in the node's
        pool (per-servant serialization still applies), so a pipelined
        batch overlaps the work of calls against different servants.
        """
        return self.dispatcher.submit(
            ref.object_id, self._runner(ref, operation, args, kwargs, context)
        )

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self) -> None:
        self.dispatcher.shutdown()
        self.services.bus.shutdown()

    def stats(self) -> Dict[str, Any]:
        services = self.services
        return {
            "node": self.name,
            "dispatch": self.dispatcher.stats.snapshot(),
            "bus_messages": services.bus.messages_delivered,
            "bus_bytes": services.bus.bytes_transferred,
            "bus_errors": services.bus.errors_returned,
            "commits": services.transactions.commits,
            "aborts": services.transactions.aborts,
            "sim_time_ms": services.clock.now(),
            "bindings": len(services.naming.list()),
        }

    def __repr__(self):  # pragma: no cover - debugging aid
        kind = type(self.dispatcher).__name__
        state = "" if self.alive else " DOWN"
        return f"<Node {self.name} dispatcher={kind}{state}>"
