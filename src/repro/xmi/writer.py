"""XMI writer: ModelResource → XML document.

Serialization rules
-------------------
* Every object becomes an element whose tag is its metaclass qualified name
  with ``.`` separators (``uml.Class``) and which carries ``xmi.id``.
* Single-valued primitive features become XML attributes; many-valued
  primitive features become ``<feature>`` child elements carrying
  ``xmi.value``.
* Containment references become a ``<feature>`` wrapper child holding the
  serialized children.
* Non-containment references become an ``xmi.idref``-list attribute.
* For each bidirectional pair only one side is written (the containment
  side if any, otherwise the lexicographically smaller ``class.feature``
  key); the reader rebuilds the other side.
* ``Any``-typed attribute values are encoded with a type marker prefix
  (``int:3``, ``bool:true``, ``str:hello`` ...) so they round-trip.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import IO, Union

from repro.errors import XmiWriteError
from repro.metamodel.instances import MList, MObject, ModelResource
from repro.metamodel.kernel import MetaAttribute, MetaReference

XMI_VERSION = "1.2"


def encode_any(value) -> str:
    """Encode a primitive value with a type marker for ``Any``-typed slots."""
    if isinstance(value, bool):
        return f"bool:{'true' if value else 'false'}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, float):
        return f"real:{value!r}"
    if isinstance(value, str):
        return f"str:{value}"
    raise XmiWriteError(
        f"cannot serialize value {value!r} of type {type(value).__name__}; "
        "only str/int/float/bool are XMI-serializable"
    )


def _encode_plain(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _should_write_reference(ref: MetaReference) -> bool:
    """Pick exactly one side of each bidirectional pair (see module docs)."""
    opposite = ref.opposite
    if opposite is None:
        return True
    if ref.containment:
        return True
    if opposite.containment:
        return False
    self_key = (ref.owning_class.qualified_name, ref.name)
    opp_key = (opposite.owning_class.qualified_name, opposite.name)
    return self_key <= opp_key


def _serialize_object(obj: MObject, parent: ET.Element) -> ET.Element:
    tag = obj.meta_class.qualified_name
    element = ET.SubElement(parent, tag, {"xmi.id": obj.uuid})
    for feature in obj.meta_class.all_features().values():
        value = obj._slots.get(feature.name)
        if value is None or (isinstance(value, MList) and not value):
            continue
        if isinstance(feature, MetaAttribute):
            _serialize_attribute(element, feature, value)
        elif isinstance(feature, MetaReference):
            if not _should_write_reference(feature):
                continue
            if feature.containment:
                wrapper = ET.SubElement(element, feature.name)
                children = value if feature.many else [value]
                for child in children:
                    _serialize_object(child, wrapper)
            else:
                targets = value if feature.many else [value]
                element.set(feature.name, " ".join(t.uuid for t in targets))
    return element


def _serialize_attribute(element: ET.Element, feature: MetaAttribute, value) -> None:
    is_any = feature.type.name == "Any"
    encode = encode_any if is_any else _encode_plain
    if feature.many:
        for item in value:
            ET.SubElement(element, feature.name, {"xmi.value": encode(item)})
    else:
        element.set(feature.name, encode(value))


def build_tree(resource: ModelResource) -> ET.ElementTree:
    """Build the XMI element tree for ``resource``."""
    root = ET.Element("XMI", {"xmi.version": XMI_VERSION})
    header = ET.SubElement(root, "XMI.header")
    documentation = ET.SubElement(header, "XMI.documentation")
    exporter = ET.SubElement(documentation, "XMI.exporter")
    exporter.text = "repro"
    model_name = ET.SubElement(documentation, "XMI.exporterVersion")
    model_name.text = "0.1.0"
    content = ET.SubElement(root, "XMI.content", {"name": resource.name})
    for obj in resource.roots:
        _serialize_object(obj, content)
    return ET.ElementTree(root)


def xmi_string(resource: ModelResource) -> str:
    """Serialize ``resource`` to an XMI document string."""
    tree = build_tree(resource)
    ET.indent(tree, space="  ")
    return ET.tostring(tree.getroot(), encoding="unicode", xml_declaration=True)


def write_xmi(resource: ModelResource, target: Union[str, IO]) -> None:
    """Serialize ``resource`` to a file path or writable text stream."""
    text = xmi_string(resource)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)
