"""XMI reader: XML document → ModelResource.

The reader is metamodel-driven: callers pass the
:class:`~repro.metamodel.kernel.MetaPackage` (or several) whose metaclasses
the document's element tags refer to.  Reconstruction happens in two
passes: first all objects are created with their primitive attributes and
containment structure, then ``xmi.idref`` reference attributes are
resolved.  Bidirectional features were written single-sided; the high-level
mutation API restores the opposite side automatically.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, IO, Iterable, Union

from repro.errors import XmiReadError
from repro.metamodel.instances import MObject, ModelResource
from repro.metamodel.kernel import (
    MetaAttribute,
    MetaClass,
    MetaPackage,
    MetaReference,
)


def decode_any(text: str):
    """Decode a type-marker-prefixed value written by the XMI writer."""
    kind, _, payload = text.partition(":")
    if kind == "str":
        return payload
    if kind == "int":
        return int(payload)
    if kind == "real":
        return float(payload)
    if kind == "bool":
        return payload == "true"
    raise XmiReadError(f"unknown Any-type marker in {text!r}")


def _decode_plain(feature: MetaAttribute, text: str):
    type_name = feature.type.name
    if type_name == "Any":
        return decode_any(text)
    if type_name == "Integer":
        return int(text)
    if type_name == "Real":
        return float(text)
    if type_name == "Boolean":
        return text == "true"
    return text  # String and enum literals


class _Reader:
    def __init__(self, packages: Iterable[MetaPackage]):
        self.classes: Dict[str, MetaClass] = {}
        for package in packages:
            for metaclass in package.all_metaclasses():
                self.classes[metaclass.qualified_name] = metaclass
        self.by_id: Dict[str, MObject] = {}
        self.pending_refs = []  # (obj, feature, idref-list)

    def read(self, root: ET.Element) -> ModelResource:
        if root.tag != "XMI":
            raise XmiReadError(f"not an XMI document (root tag {root.tag!r})")
        content = root.find("XMI.content")
        if content is None:
            raise XmiReadError("XMI document has no XMI.content element")
        resource = ModelResource(content.get("name", "model"))
        for child in content:
            resource.add_root(self._build_object(child))
        self._resolve_references()
        return resource

    def _metaclass_for(self, tag: str) -> MetaClass:
        try:
            return self.classes[tag]
        except KeyError:
            raise XmiReadError(f"no metaclass {tag!r} in the supplied metamodels") from None

    def _build_object(self, element: ET.Element) -> MObject:
        metaclass = self._metaclass_for(element.tag)
        obj = MObject(metaclass)
        xmi_id = element.get("xmi.id")
        if xmi_id is None:
            raise XmiReadError(f"element {element.tag} lacks xmi.id")
        if xmi_id in self.by_id:
            raise XmiReadError(f"duplicate xmi.id {xmi_id!r}")
        self.by_id[xmi_id] = obj

        features = metaclass.all_features()
        for key, raw in element.attrib.items():
            if key.startswith("xmi."):
                continue
            feature = features.get(key)
            if feature is None:
                raise XmiReadError(f"{element.tag} has no feature {key!r}")
            if isinstance(feature, MetaAttribute):
                obj.set(key, _decode_plain(feature, raw))
            else:
                self.pending_refs.append((obj, feature, raw.split()))

        for child in element:
            feature = features.get(child.tag)
            if feature is None:
                raise XmiReadError(f"{element.tag} has no feature {child.tag!r}")
            if isinstance(feature, MetaAttribute):
                raw = child.get("xmi.value")
                if raw is None:
                    raise XmiReadError(
                        f"many-valued attribute element {child.tag} lacks xmi.value"
                    )
                value = decode_any(raw) if feature.type.name == "Any" else _decode_plain(feature, raw)
                if feature.many:
                    obj.get(feature.name).append(value)
                else:
                    obj.set(feature.name, value)
            elif isinstance(feature, MetaReference) and feature.containment:
                for grandchild in child:
                    built = self._build_object(grandchild)
                    if feature.many:
                        obj.get(feature.name).append(built)
                    else:
                        obj.set(feature.name, built)
            else:
                raise XmiReadError(
                    f"unexpected child element {child.tag!r} under {element.tag}"
                )
        return obj

    def _resolve_references(self) -> None:
        for obj, feature, idrefs in self.pending_refs:
            for idref in idrefs:
                target = self.by_id.get(idref)
                if target is None:
                    raise XmiReadError(
                        f"unresolved xmi.idref {idref!r} for "
                        f"{obj.meta_class.name}.{feature.name}"
                    )
                if feature.many:
                    obj.get(feature.name).append(target)
                else:
                    obj.set(feature.name, target)


def parse_xmi(text: str, packages) -> ModelResource:
    """Parse an XMI document string against metamodel ``packages``.

    ``packages`` may be a single :class:`MetaPackage` or an iterable.
    """
    if isinstance(packages, MetaPackage):
        packages = [packages]
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmiReadError(f"malformed XML: {exc}") from exc
    return _Reader(packages).read(root)


def read_xmi(source: Union[str, IO], packages) -> ModelResource:
    """Read an XMI document from a file path or readable text stream."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = source.read()
    return parse_xmi(text, packages)
