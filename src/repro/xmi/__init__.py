"""S4 — XMI-style XML serialization of models (Section 3 requirement).

The writer serializes a :class:`~repro.metamodel.instances.ModelResource`
into an XMI-1.2-flavored document; the reader reconstructs a resource given
the metamodel package(s) the document's elements are typed by.  The dialect
is self-consistent and round-trip safe (``read(write(m))`` reproduces the
model up to object identity); byte-compatibility with 2003-era commercial
tools is a documented non-goal (see DESIGN.md substitutions).
"""

from repro.xmi.writer import write_xmi, xmi_string
from repro.xmi.reader import read_xmi, parse_xmi

__all__ = ["write_xmi", "xmi_string", "read_xmi", "parse_xmi"]
