"""Quickstart — the smallest end-to-end tour of the library.

Builds a two-class functional PIM, refines it along one concern dimension
(transactions), generates the functional code and the concrete aspect,
weaves, and shows that a failing operation rolls back.

Run:  python examples/quickstart.py
"""

from repro import MdaLifecycle, new_model
from repro.uml import (
    add_attribute,
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    ensure_primitives,
)


def build_pim():
    """Step 1 — the pure functional model (no concern logic anywhere)."""
    resource, model = new_model("inventory")
    prims = ensure_primitives(model)
    pkg = add_package(model, "store")

    item = add_class(pkg, "StockItem")
    add_attribute(item, "name", prims["String"])
    add_attribute(item, "quantity", prims["Integer"])
    reserve = add_operation(
        item, "reserve", [("count", prims["Integer"])], return_type=prims["Integer"]
    )
    # operation bodies travel as <<PythonBody>> tagged values (the
    # executable-UML action-language substitution, see DESIGN.md)
    apply_stereotype(
        reserve,
        "PythonBody",
        body=(
            "if count > self.quantity:\n"
            "    raise ValueError('not enough stock')\n"
            "self.quantity -= count\n"
            "return self.quantity"
        ),
    )
    return resource


def main():
    resource = build_pim()

    # Step 2 — specialize the generic transactions transformation with the
    # application-specific parameter set Si and apply it (Fig. 1).
    lifecycle = MdaLifecycle(resource)
    result = lifecycle.apply_concern(
        "transactions",
        transactional_ops=["StockItem.reserve"],
        state_classes=["StockItem"],
    )
    print(f"applied {result.transformation}")
    print(f"  elements added to the model: {result.created_elements}")

    # Step 3 — the concrete aspect was generated from the SAME Si.
    for name, source in lifecycle.generate_aspect_sources().items():
        print(f"\ngenerated concrete aspect {name}:")
        print("  " + "\n  ".join(source.splitlines()[:12]) + "\n  ...")

    # Step 4 — generate the functional code, weave, run.
    app = lifecycle.build_application("quickstart_app")
    item = app.StockItem(name="widget", quantity=10)
    item.reserve(3)
    print(f"\nreserved 3: quantity now {item.quantity}")
    try:
        item.reserve(100)
    except ValueError as exc:
        print(f"reserve(100) failed ({exc}); quantity rolled back to {item.quantity}")
    assert item.quantity == 7

    manager = lifecycle.services.transactions
    print(f"transactions: {manager.commits} committed, {manager.aborts} aborted")
    print("\n" + lifecycle.summary())


if __name__ == "__main__":
    main()
