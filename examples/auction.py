"""Auction house — distribution-heavy scenario with logging.

An auction service is distributed (bidders call it remotely through the
ORB with pass-by-value marshalling and latency accounting), and the
logging concern observes every bid.  Demonstrates that the *same* generic
transformations specialize to a completely different application purely
through Si, and shows concern-space viewpoints and trace links.

Run:  python examples/auction.py
"""

from repro.core import MdaLifecycle
from repro.ocl.evaluator import types_from_package
from repro.uml import (
    UML,
    add_attribute,
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    ensure_primitives,
    new_model,
)


def build_pim():
    resource, model = new_model("auction")
    prims = ensure_primitives(model)
    pkg = add_package(model, "market")

    auction = add_class(pkg, "Auction")
    add_attribute(auction, "item", prims["String"])
    add_attribute(auction, "highestBid", prims["Real"])
    add_attribute(auction, "highestBidder", prims["String"])
    add_attribute(auction, "closed", prims["Boolean"])

    bid = add_operation(
        auction,
        "bid",
        [("who", prims["String"]), ("amount", prims["Real"])],
        return_type=prims["Boolean"],
    )
    apply_stereotype(
        bid,
        "PythonBody",
        body=(
            "if self.closed:\n"
            "    raise ValueError('auction closed')\n"
            "if amount <= self.highestBid:\n"
            "    return False\n"
            "self.highestBid = amount\n"
            "self.highestBidder = who\n"
            "return True"
        ),
    )
    close = add_operation(auction, "close", return_type=prims["String"])
    apply_stereotype(
        close,
        "PythonBody",
        body="self.closed = True\nreturn self.highestBidder",
    )
    status = add_operation(auction, "status", return_type=prims["Real"])
    apply_stereotype(status, "PythonBody", body="return self.highestBid")
    return resource


def main():
    resource = build_pim()
    lifecycle = MdaLifecycle(resource)

    # the distribution concern-space viewpoint, evaluated with Si
    gmt = lifecycle.registry.get("distribution")
    cmt_preview = gmt.specialize(server_classes=["Auction"], registry_prefix="market")
    space = cmt_preview.concern_space(resource, types_from_package(UML.package))
    print(f"concern space of distribution (from viewpoint + Si): {space.names()}")

    lifecycle.apply_concern(
        "distribution", server_classes=["Auction"], registry_prefix="market"
    )
    lifecycle.apply_concern("logging", log_patterns=["Auction.bid", "Auction.close"])

    # trace links: what did the distribution CMT create from the Auction class?
    trace = lifecycle.engine.trace
    cmt_name = lifecycle.applied[0][0].name
    created = trace.created_by(cmt_name)
    names = [
        e.get("name")
        for e in created
        if e.meta_class.has_feature("name") and e.is_set("name")
    ]
    print(f"elements created by {cmt_name}: {sorted(set(names))}")

    app = lifecycle.build_application("auction_app")
    services = lifecycle.services

    auction = app.Auction(item="painting", highestBid=0.0, highestBidder="", closed=False)
    print("\n--- bidding (every call crosses the simulated wire) ---")
    for who, amount in (
        ("ana", 100.0),
        ("ben", 90.0),   # too low
        ("cyd", 150.0),
        ("ana", 180.0),
    ):
        accepted = auction.bid(who, amount)
        print(f"  bid {who:>3} {amount:>6}: {'accepted' if accepted else 'rejected'}")
    winner = auction.close()
    print(f"winner: {winner} at {auction.status()}")

    try:
        auction.bid("dan", 500.0)
    except Exception as exc:
        print(f"late bid rejected: {type(exc).__name__}: {exc}")

    log_aspect = lifecycle.applied[1][1].build(services)
    print(f"\nlogging aspect recorded {len(log_aspect.records)} events:")
    for record in log_aspect.records[:6]:
        print(f"  {record}")

    print("\n--- ORB statistics ---")
    print(f"messages: {services.bus.messages_delivered}, "
          f"bytes: {services.bus.bytes_transferred}, "
          f"simulated latency charged: {services.clock.now():.1f} ms")
    print(f"naming service bindings: {services.naming.list('market')}")

    assert winner == "ana" and auction.status() == 180.0


if __name__ == "__main__":
    main()
