"""Component shipping — the paper's §2 closing question, answered.

    "Should we ship only the last, most specialized model, together with
    the implementation, or should we ship all the intermediate models,
    together with the transformations and the set of parameters that
    specialize each transformation?"

This example ships the *recipe*: the initial PIM, the ordered
(concern, Si) steps, the final model, and the generated concrete-aspect
sources — then, playing the receiving organization, replays the recipe in
a fresh environment, verifies structural equivalence, re-parameterizes one
step (reuse!), and runs the rebuilt application.

Run:  python examples/component_shipping.py
"""

import json

from repro.core import ComponentPackage, MdaLifecycle, MiddlewareServices, replay, ship
from repro.uml import (
    add_attribute,
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    ensure_primitives,
    new_model,
)


def build_pim():
    resource, model = new_model("orders")
    prims = ensure_primitives(model)
    pkg = add_package(model, "shop")
    order = add_class(pkg, "Order")
    add_attribute(order, "total", prims["Real"])
    add_attribute(order, "paid", prims["Boolean"])
    pay = add_operation(order, "pay", [("amount", prims["Real"])], return_type=prims["Boolean"])
    apply_stereotype(pay, "PythonBody", body=(
        "if amount < self.total:\n"
        "    raise ValueError('partial payment refused')\n"
        "self.paid = True\n"
        "return True"))
    return resource


def main():
    # ---- vendor side: refine and ship --------------------------------------
    vendor = MdaLifecycle(build_pim())
    vendor.apply_concern(
        "transactions", transactional_ops=["Order.pay"], state_classes=["Order"]
    )
    vendor.apply_concern(
        "security",
        protected_ops=["Order.pay"],
        role_grants={"cashier": ["Order.*"]},
    )
    package = ship(vendor)
    wire = package.to_json()
    print(f"shipped component {package.name!r}: {len(wire)} bytes of JSON")
    print(f"  steps: {[ (s.concern, s.parameters) for s in package.steps ]}")
    print(f"  aspect sources: {sorted(package.aspect_sources)}")

    # ---- receiver side: audit + replay + verify ------------------------------
    received = ComponentPackage.from_json(wire)
    print("\nreceiver audits the recipe:")
    for i, step in enumerate(received.steps):
        print(f"  step {i}: {step.transformation} with Si = "
              + json.dumps(step.parameters))

    replayed = replay(received, services=MiddlewareServices.create())
    print("replay verified: replayed model structurally equals the shipped one")

    app = replayed.build_application("orders_replayed")
    services = replayed.services
    services.credentials.add_user("carol", "pw", roles=["cashier"])
    cred = services.auth.login("carol", "pw")
    order = app.Order(total=30.0, paid=False)
    with services.orb.call_context(credentials=cred.token):
        order.pay(30.0)
    print(f"replayed application works: order paid={order.paid}")

    # ---- reuse: re-parameterize one step and rebuild --------------------------
    print("\nreuse: the receiver tightens security (extra protected op)")
    retargeted = MdaLifecycle(build_pim(), services=MiddlewareServices.create())
    for step in received.steps:
        params = dict(step.parameters)
        if step.concern == "security":
            params["role_grants"] = {"auditor": ["Order.*"]}
        retargeted.apply_concern(step.concern, **params)
    app2 = retargeted.build_application("orders_retargeted")
    services2 = retargeted.services
    services2.credentials.add_user("carol", "pw", roles=["cashier"])
    cred2 = services2.auth.login("carol", "pw")
    order2 = app2.Order(total=5.0, paid=False)
    with services2.orb.call_context(credentials=cred2.token):
        try:
            order2.pay(5.0)
        except Exception as exc:
            print(f"cashier now denied under the retargeted policy: "
                  f"{type(exc).__name__}")
    assert order2.paid is False
    print("same generic artifacts, different Si, different system — reuse works")


if __name__ == "__main__":
    main()
