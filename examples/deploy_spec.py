"""Declarative deployment — spec in, federation out, diff to reconfigure.

Loads the standalone spec file ``deployment_spec.json`` (a 3-node
banking federation with one standby per partition), compiles it into a
live federation with one call, drives a few routed operations, then
reconfigures by *diffing specs*: ``deployment_target.json`` adds a
fourth node and raises the replica count, and ``repro.deploy.apply``
turns that difference into an ordered migration plan (join before any
removal, replication after the ring is final) executed through the
elastic machinery — no hand-sequenced ``join``/``enable_replication``
calls anywhere.

Run:  python examples/deploy_spec.py

The same flow is scriptable from the shell::

    python -m repro.cli deploy --spec examples/deployment_spec.json --check
    python -m repro.cli deploy --spec examples/deployment_spec.json \
        --diff examples/deployment_target.json
    python -m repro.cli deploy --spec examples/deployment_spec.json \
        --apply examples/deployment_target.json
"""

from pathlib import Path

from repro.deploy import DeploymentCompiler, DeploymentDiff, DeploymentSpec, apply
from repro.runtime import FederationClient

HERE = Path(__file__).resolve().parent


def load(name: str) -> DeploymentSpec:
    return DeploymentSpec.from_json((HERE / name).read_text())


def main():
    base = load("deployment_spec.json")
    target = load("deployment_target.json")
    print(base.describe())

    # -- compile: one call from declarative model to running federation
    compiler = DeploymentCompiler()
    print()
    print(compiler.compile(base).describe())
    federation = compiler.deploy(base)
    try:
        client = FederationClient(federation, "alice", "pw")
        account = "branch-0/Account/0"
        print()
        print(f"balance({account})     = {client.call(account, 'getBalance')}")
        client.call(account, "deposit", 250.0)
        print(f"after deposit(250)     = {client.call(account, 'getBalance')}")
        print(f"shards                 = {federation.naming.stats()}")

        # -- reconcile: reconfiguration is a spec diff, not a call sequence
        print()
        diff = DeploymentDiff.between(federation.current_spec(), target)
        print(diff.describe())
        plan = apply(federation, target)
        print(plan.describe())
        print()
        print(f"nodes now              = {sorted(federation.nodes)}")
        print(f"replicas/partition     = {federation.replicas.count}")
        print(f"balance survived       = {client.call(account, 'getBalance')}")
        drift = DeploymentDiff.between(federation.current_spec(), target)
        print(f"drift after reconcile  = {'none' if drift.empty else drift.describe()}")
    finally:
        federation.shutdown()


if __name__ == "__main__":
    main()
