"""Banking — the paper's Fig. 2 scenario, end to end.

Three middleware concerns (C1 distribution, C2 transactions, C3 security)
are applied to a banking PIM in order; each generic transformation is
specialized with application-specific parameters via the concern wizard
(Section 3), each concrete aspect A_i<Si> is generated from the same Si,
and the woven application demonstrably behaves remotely, atomically, and
securely.  Also shows: workflow gating, demarcation colors, undo/redo,
version diff, and XMI export.

Run:  python examples/banking.py
"""

from repro.core import MdaLifecycle
from repro.uml import (
    add_attribute,
    add_class,
    add_operation,
    add_package,
    apply_stereotype,
    ensure_primitives,
    new_model,
)
from repro.workflow import ConcernWizard, RefinementGuide, WorkflowModel
from repro.xmi import xmi_string
from repro.errors import AccessDeniedError, AuthenticationError, RemoteInvocationError


def build_pim():
    resource, model = new_model("bank")
    prims = ensure_primitives(model)
    pkg = add_package(model, "accounts")

    account = add_class(pkg, "Account")
    add_attribute(account, "number", prims["String"])
    add_attribute(account, "balance", prims["Real"])
    deposit = add_operation(
        account, "deposit", [("amount", prims["Real"])], return_type=prims["Real"]
    )
    apply_stereotype(
        deposit, "PythonBody", body="self.balance += amount\nreturn self.balance"
    )
    withdraw = add_operation(
        account, "withdraw", [("amount", prims["Real"])], return_type=prims["Real"]
    )
    apply_stereotype(
        withdraw,
        "PythonBody",
        body=(
            "if amount > self.balance:\n"
            "    raise ValueError('insufficient funds')\n"
            "self.balance -= amount\n"
            "return self.balance"
        ),
    )
    bank = add_class(pkg, "Bank")
    transfer = add_operation(
        bank,
        "transfer",
        [("source", None), ("target", None), ("amount", prims["Real"])],
        return_type=prims["Boolean"],
    )
    apply_stereotype(
        transfer,
        "PythonBody",
        body="source.withdraw(amount)\ntarget.deposit(amount)\nreturn True",
    )
    return resource


def main():
    resource = build_pim()

    # ---- workflow: distribution must come before transactions & security
    workflow = WorkflowModel()
    workflow.add_step("distribution")
    workflow.add_step("transactions", requires=["distribution"])
    workflow.add_step("security", requires=["distribution"])
    workflow.add_step("logging", optional=True)
    workflow.validate()

    lifecycle = MdaLifecycle(resource, workflow=workflow)
    guide = RefinementGuide(workflow, lifecycle.repository.demarcation)
    v0 = lifecycle.repository.commit("functional PIM")

    # ---- configure each concern through its wizard (Section 3) ----------
    answers = {
        "distribution": {
            "server_classes": ["Account"],
            "registry_prefix": "bank",
        },
        "transactions": {
            "transactional_ops": [
                "Bank.transfer",
                "Account.withdraw",
                "Account.deposit",
            ],
            "state_classes": ["Account"],
        },
        "security": {
            "protected_ops": ["Bank.transfer"],
            "role_grants": {"teller": ["Bank.*"]},
        },
    }
    for concern in ("distribution", "transactions", "security"):
        wizard = ConcernWizard(lifecycle.registry.get(concern))
        print(wizard.transcript())
        si = wizard.collect(answers[concern])
        result = lifecycle.apply_concern(concern, **si.as_dict())
        print(f"  -> applied {result.transformation}"
              f" (+{result.created_elements} elements)\n")
        print(guide.report(lifecycle.applied_concerns) + "\n")

    # ---- Fig. 2 rendered ---------------------------------------------------
    print(lifecycle.summary())

    # ---- undo/redo of a transformation (Section 3 requirement) ------------
    repo = lifecycle.repository
    print(f"\nundo:  {repo.undo()!r} reverted")
    print(f"redo:  {repo.redo()!r} re-applied")

    # ---- version diff -------------------------------------------------------
    v3 = repo.commit("after all concerns")
    diff = repo.diff(v0.id, v3.id)
    added = [e for e in diff if e.kind == "added"]
    print(f"diff {v0.id}..{v3.id}: {len(added)} elements added, e.g.:")
    for entry in added[:5]:
        print(f"  + {entry.label}")

    # ---- XMI export (Section 3 requirement) --------------------------------
    document = xmi_string(repo.resource)
    print(f"\nXMI export: {len(document)} bytes, "
          f"{document.count('xmi.id=')} identified elements")

    # ---- build, weave, run ---------------------------------------------------
    app = lifecycle.build_application("banking_app")
    services = lifecycle.services
    services.credentials.add_user("alice", "secret", roles=["teller"])
    services.credentials.add_user("mallory", "secret", roles=["customer"])

    bank = app.Bank()
    checking = app.Account(number="CH-1", balance=100.0)
    savings = app.Account(number="SV-1", balance=10.0)

    print("\n--- running the woven application ---")
    try:
        bank.transfer(checking, savings, 5.0)
    except AuthenticationError as exc:
        print(f"anonymous transfer rejected: {exc}")

    mallory = services.auth.login("mallory", "secret")
    with services.orb.call_context(credentials=mallory.token):
        try:
            bank.transfer(checking, savings, 5.0)
        except AccessDeniedError as exc:
            print(f"customer transfer denied:   {exc}")

    alice = services.auth.login("alice", "secret")
    with services.orb.call_context(credentials=alice.token):
        bank.transfer(checking, savings, 25.0)
        print(f"teller transfer ok:          CH-1={checking.balance} SV-1={savings.balance}")
        try:
            bank.transfer(checking, savings, 10_000.0)
        except (ValueError, RemoteInvocationError) as exc:
            print(f"overdraft rolled back:       {exc}")
    print(f"balances after rollback:     CH-1={checking.balance} SV-1={savings.balance}")

    print("\n--- middleware statistics ---")
    print(f"bus messages: {services.bus.messages_delivered}, "
          f"bytes: {services.bus.bytes_transferred}, "
          f"simulated time: {services.clock.now():.1f} ms")
    print(f"transactions: {services.transactions.commits} committed, "
          f"{services.transactions.aborts} aborted")
    print(f"audit log: {len(services.audit.records)} records, "
          f"{len(services.audit.denials())} denials")

    assert checking.balance == 75.0 and savings.balance == 35.0


if __name__ == "__main__":
    main()
